// Package trace captures packets at host boundaries — a tcpdump for the
// simulated network. Captures record virtual timestamps, direction, and
// the full header; they render as tcpdump-style text and support
// five-tuple filters. Tests and examples use traces to assert on exact
// wire behaviour (e.g. that subsession five-tuples, not session headers,
// appear between hosts).
package trace

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Record is one captured packet.
type Record struct {
	Time    sim.Time
	Host    string
	Dir     netsim.Direction
	Tuple   packet.FiveTuple
	Flags   packet.TCPFlags
	Seq     uint32
	Ack     uint32
	Len     int
	Window  uint16
	HasTS   bool
	SACKLen int
}

// String renders the record tcpdump-style.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v %-10s %-7v %v", r.Time, r.Host, r.Dir, r.Tuple)
	if r.Tuple.Proto == packet.ProtoTCP {
		fmt.Fprintf(&b, " %v seq=%d ack=%d len=%d win=%d", r.Flags, r.Seq, r.Ack, r.Len, r.Window)
		if r.SACKLen > 0 {
			fmt.Fprintf(&b, " sack=%d", r.SACKLen)
		}
	} else {
		fmt.Fprintf(&b, " len=%d", r.Len)
	}
	return b.String()
}

// Filter selects packets; nil matches everything.
type Filter func(p *packet.Packet) bool

// TCPOnly matches TCP packets.
func TCPOnly(p *packet.Packet) bool { return p.IsTCP() }

// UDPOnly matches UDP packets.
func UDPOnly(p *packet.Packet) bool { return p.IsUDP() }

// Port matches packets with the given source or destination port.
func Port(port packet.Port) Filter {
	return func(p *packet.Packet) bool {
		return p.Tuple.SrcPort == port || p.Tuple.DstPort == port
	}
}

// Between matches packets exchanged between two addresses (either
// direction).
func Between(a, b packet.Addr) Filter {
	return func(p *packet.Packet) bool {
		return (p.Tuple.SrcIP == a && p.Tuple.DstIP == b) ||
			(p.Tuple.SrcIP == b && p.Tuple.DstIP == a)
	}
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(p *packet.Packet) bool {
		for _, f := range fs {
			if f != nil && !f(p) {
				return false
			}
		}
		return true
	}
}

// Capture accumulates records from one or more hosts.
type Capture struct {
	eng    *sim.Engine
	filter Filter
	recs   []Record
	// Limit bounds stored records (0 = 100k); older records are kept,
	// new ones dropped, and Truncated set.
	Limit     int
	Truncated bool
}

// New creates a capture with an optional filter.
func New(eng *sim.Engine, filter Filter) *Capture {
	return &Capture{eng: eng, filter: filter, Limit: 100_000}
}

// Attach starts capturing at a host boundary, both directions. The hook
// observes packets after earlier hooks (e.g. a Dysco agent) have run when
// attached after them, so what it sees is what the wire sees.
func (c *Capture) Attach(h *netsim.Host) {
	hook := func(p *packet.Packet, dir netsim.Direction) netsim.Verdict {
		c.observe(h.Name, p, dir)
		return netsim.Pass
	}
	h.AddIngressHook(hook)
	h.AddEgressHook(hook)
}

func (c *Capture) observe(host string, p *packet.Packet, dir netsim.Direction) {
	if c.filter != nil && !c.filter(p) {
		return
	}
	if len(c.recs) >= c.Limit {
		c.Truncated = true
		return
	}
	r := Record{
		Time:  c.eng.Now(),
		Host:  host,
		Dir:   dir,
		Tuple: p.Tuple,
		Flags: p.Flags,
		Seq:   p.Seq,
		Ack:   p.Ack,
		Len:   p.DataLen(),
	}
	if p.IsTCP() {
		r.Window = p.Window
		r.HasTS = p.Opts.TS != nil
		r.SACKLen = len(p.Opts.SACK)
	}
	c.recs = append(c.recs, r)
}

// Records returns the captured packets in order.
func (c *Capture) Records() []Record { return c.recs }

// Count returns captured packet count.
func (c *Capture) Count() int { return len(c.recs) }

// Grep returns records whose rendered line contains substr.
func (c *Capture) Grep(substr string) []Record {
	var out []Record
	for _, r := range c.recs {
		if strings.Contains(r.String(), substr) {
			out = append(out, r)
		}
	}
	return out
}

// Tuples returns the distinct five-tuples observed, in first-seen order.
func (c *Capture) Tuples() []packet.FiveTuple {
	seen := make(map[packet.FiveTuple]bool)
	var out []packet.FiveTuple
	for _, r := range c.recs {
		if !seen[r.Tuple] {
			seen[r.Tuple] = true
			out = append(out, r.Tuple)
		}
	}
	return out
}

// Hash returns a 64-bit FNV-1a digest of the rendered capture. Two runs
// of the same scenario with the same seed must produce equal hashes —
// the determinism regression tests compare exactly this.
func (c *Capture) Hash() uint64 {
	h := fnv.New64a()
	for _, r := range c.recs {
		h.Write([]byte(r.String()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// Dump renders the whole capture.
func (c *Capture) Dump() string {
	var b strings.Builder
	for _, r := range c.recs {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	if c.Truncated {
		b.WriteString("... capture truncated ...\n")
	}
	return b.String()
}
