// Package trace captures packets at host boundaries — a tcpdump for the
// simulated network. Captures record virtual timestamps, direction, and
// the full header; they render as tcpdump-style text and support
// five-tuple filters. Tests and examples use traces to assert on exact
// wire behaviour (e.g. that subsession five-tuples, not session headers,
// appear between hosts).
package trace

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Record is one captured packet.
type Record struct {
	Time    sim.Time
	Host    string
	Dir     netsim.Direction
	Tuple   packet.FiveTuple
	Flags   packet.TCPFlags
	Seq     uint32
	Ack     uint32
	Len     int
	Window  uint16
	HasTS   bool
	SACKLen int
}

// String renders the record tcpdump-style.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v %-10s %-7v %v", r.Time, r.Host, r.Dir, r.Tuple)
	if r.Tuple.Proto == packet.ProtoTCP {
		fmt.Fprintf(&b, " %v seq=%d ack=%d len=%d win=%d", r.Flags, r.Seq, r.Ack, r.Len, r.Window)
		if r.SACKLen > 0 {
			fmt.Fprintf(&b, " sack=%d", r.SACKLen)
		}
	} else {
		fmt.Fprintf(&b, " len=%d", r.Len)
	}
	return b.String()
}

// Filter selects packets; nil matches everything.
type Filter func(p *packet.Packet) bool

// TCPOnly matches TCP packets.
func TCPOnly(p *packet.Packet) bool { return p.IsTCP() }

// UDPOnly matches UDP packets.
func UDPOnly(p *packet.Packet) bool { return p.IsUDP() }

// Port matches packets with the given source or destination port.
func Port(port packet.Port) Filter {
	return func(p *packet.Packet) bool {
		return p.Tuple.SrcPort == port || p.Tuple.DstPort == port
	}
}

// Between matches packets exchanged between two addresses (either
// direction).
func Between(a, b packet.Addr) Filter {
	return func(p *packet.Packet) bool {
		return (p.Tuple.SrcIP == a && p.Tuple.DstIP == b) ||
			(p.Tuple.SrcIP == b && p.Tuple.DstIP == a)
	}
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(p *packet.Packet) bool {
		for _, f := range fs {
			if f != nil && !f(p) {
				return false
			}
		}
		return true
	}
}

// Capture accumulates records from one or more hosts.
type Capture struct {
	eng    *sim.Engine
	filter Filter
	recs   []Record
	// Limit bounds stored records (0 = 100k); older records are kept,
	// new ones dropped, and Truncated set.
	Limit     int
	Truncated bool
}

// New creates a capture with an optional filter.
func New(eng *sim.Engine, filter Filter) *Capture {
	return &Capture{eng: eng, filter: filter, Limit: 100_000}
}

// Attach starts capturing at a host boundary, both directions. The hook
// observes packets after earlier hooks (e.g. a Dysco agent) have run when
// attached after them, so what it sees is what the wire sees.
func (c *Capture) Attach(h *netsim.Host) {
	hook := func(p *packet.Packet, dir netsim.Direction) netsim.Verdict {
		c.observe(h.Name, p, dir)
		return netsim.Pass
	}
	h.AddIngressHook(hook)
	h.AddEgressHook(hook)
}

func (c *Capture) observe(host string, p *packet.Packet, dir netsim.Direction) {
	if c.filter != nil && !c.filter(p) {
		return
	}
	// Treat a non-positive Limit as the documented default so a caller who
	// zeroes the field (or builds a Capture literal) still captures — the
	// old comparison made Limit 0 silently drop every record.
	limit := c.Limit
	if limit <= 0 {
		limit = 100_000
	}
	if len(c.recs) >= limit {
		c.Truncated = true
		return
	}
	r := Record{
		Time:  c.eng.Now(),
		Host:  host,
		Dir:   dir,
		Tuple: p.Tuple,
		Flags: p.Flags,
		Seq:   p.Seq,
		Ack:   p.Ack,
		Len:   p.DataLen(),
	}
	if p.IsTCP() {
		r.Window = p.Window
		r.HasTS = p.Opts.TS != nil
		r.SACKLen = len(p.Opts.SACK)
	}
	c.recs = append(c.recs, r)
}

// Records returns the captured packets in order.
func (c *Capture) Records() []Record { return c.recs }

// Count returns captured packet count.
func (c *Capture) Count() int { return len(c.recs) }

// Grep returns records whose rendered line contains substr.
func (c *Capture) Grep(substr string) []Record {
	var out []Record
	for _, r := range c.recs {
		if strings.Contains(r.String(), substr) {
			out = append(out, r)
		}
	}
	return out
}

// Tuples returns the distinct five-tuples observed, in first-seen order.
func (c *Capture) Tuples() []packet.FiveTuple {
	seen := make(map[packet.FiveTuple]bool)
	var out []packet.FiveTuple
	for _, r := range c.recs {
		if !seen[r.Tuple] {
			seen[r.Tuple] = true
			out = append(out, r.Tuple)
		}
	}
	return out
}

// Hash returns a 64-bit FNV-1a digest of the rendered capture. Two runs
// of the same scenario with the same seed must produce equal hashes —
// the determinism regression tests compare exactly this.
func (c *Capture) Hash() uint64 {
	h := fnv.New64a()
	for _, r := range c.recs {
		h.Write([]byte(r.String()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// recordJSON is the wire form of one record: the same conventions as the
// obs event log (one JSON object per line; "time" in virtual nanoseconds;
// "host"; five-tuples rendered by their String form) so one consumer can
// join packet captures with structured events.
type recordJSON struct {
	Time  int64  `json:"time"`
	Host  string `json:"host"`
	Dir   string `json:"dir"`
	Tuple string `json:"tuple"`
	Flags string `json:"flags,omitempty"`
	Seq   uint32 `json:"seq"`
	Ack   uint32 `json:"ack"`
	Len   int    `json:"len"`
	Win   uint16 `json:"win"`
	TS    bool   `json:"ts,omitempty"`
	SACK  int    `json:"sack,omitempty"`
}

// MarshalJSON renders the record in the shared JSON-lines schema.
func (r Record) MarshalJSON() ([]byte, error) {
	j := recordJSON{
		Time:  int64(r.Time),
		Host:  r.Host,
		Dir:   r.Dir.String(),
		Tuple: r.Tuple.String(),
		Seq:   r.Seq,
		Ack:   r.Ack,
		Len:   r.Len,
		Win:   r.Window,
		TS:    r.HasTS,
		SACK:  r.SACKLen,
	}
	if r.Tuple.Proto == packet.ProtoTCP {
		j.Flags = r.Flags.String()
	}
	return json.Marshal(j)
}

// DumpJSON writes the capture as JSON lines (one record object per line),
// byte-identical across same-seed runs.
func (c *Capture) DumpJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range c.recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Dump renders the whole capture.
func (c *Capture) Dump() string {
	var b strings.Builder
	for _, r := range c.recs {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	if c.Truncated {
		b.WriteString("... capture truncated ...\n")
	}
	return b.String()
}
