package netsim

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

func twoHosts(t *testing.T, cfg LinkConfig) (*sim.Engine, *Network, *Host, *Host) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	b := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(a, b, cfg)
	n.ComputeRoutes()
	return eng, n, a, b
}

func udpTo(dst *Host, src *Host, port packet.Port, payload []byte) *packet.Packet {
	return packet.NewUDP(packet.FiveTuple{
		SrcIP: src.Addr, DstIP: dst.Addr, SrcPort: 5555, DstPort: port,
	}, payload)
}

func TestDeliverySingleHop(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{Delay: time.Millisecond})
	var got *packet.Packet
	b.BindUDP(9000, func(p *packet.Packet) { got = p })
	a.Send(udpTo(b, a, 9000, []byte("hi")))
	eng.RunUntilIdle()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if string(got.Payload) != "hi" {
		t.Errorf("payload = %q", got.Payload)
	}
	// Propagation delay plus small CPU costs.
	if eng.Now() < time.Millisecond || eng.Now() > time.Millisecond+time.Millisecond {
		t.Errorf("delivery time = %v", eng.Now())
	}
	if a.Stats.PacketsOut != 1 || b.Stats.PacketsIn != 1 || b.Stats.DeliveredUp != 1 {
		t.Errorf("counters: %+v %+v", a.Stats, b.Stats)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000 bytes/sec link: a 78-byte UDP packet takes 78 ms on the wire.
	eng, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1000})
	var at sim.Time
	b.BindUDP(9000, func(p *packet.Packet) { at = eng.Now() })
	a.Send(udpTo(b, a, 9000, make([]byte, 50))) // Size = 78
	eng.RunUntilIdle()
	if at < 78*time.Millisecond || at > 79*time.Millisecond {
		t.Errorf("delivery at %v, want ≈78ms", at)
	}
}

func TestQueueDropTail(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1000, QueueBytes: 200})
	delivered := 0
	b.BindUDP(9000, func(p *packet.Packet) { delivered++ })
	for i := 0; i < 10; i++ {
		a.Send(udpTo(b, a, 9000, make([]byte, 50))) // 78 bytes each
	}
	eng.RunUntilIdle()
	if delivered >= 10 {
		t.Errorf("no drops despite tiny queue: delivered=%d", delivered)
	}
	if a.LinkTo(b.Addr).Drops() == 0 {
		t.Error("link drop counter is zero")
	}
	if delivered+int(a.LinkTo(b.Addr).Drops()) != 10 {
		t.Errorf("delivered %d + drops %d != 10", delivered, a.LinkTo(b.Addr).Drops())
	}
}

func TestRandomLoss(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{LossProb: 0.5})
	delivered := 0
	b.BindUDP(9000, func(p *packet.Packet) { delivered++ })
	for i := 0; i < 1000; i++ {
		a.Send(udpTo(b, a, 9000, nil))
	}
	eng.RunUntilIdle()
	if delivered < 400 || delivered > 600 {
		t.Errorf("delivered %d of 1000 at p=0.5", delivered)
	}
}

func TestForwardingAndTTL(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	r := n.AddHost("r", packet.MakeAddr(10, 0, 0, 2))
	b := n.AddHost("b", packet.MakeAddr(10, 0, 0, 3))
	r.Forwarding = true
	n.Connect(a, r, LinkConfig{})
	n.Connect(r, b, LinkConfig{})
	n.ComputeRoutes()

	got := false
	b.BindUDP(9000, func(p *packet.Packet) { got = true })
	a.Send(udpTo(b, a, 9000, nil))
	eng.RunUntilIdle()
	if !got {
		t.Fatal("multi-hop packet not delivered")
	}
	if r.Stats.Forwarded != 1 {
		t.Errorf("router forwarded = %d", r.Stats.Forwarded)
	}

	// TTL exhaustion: craft a packet with TTL 1 entering the router.
	p := udpTo(b, a, 9000, nil)
	p.TTL = 1
	got = false
	a.Send(p)
	eng.RunUntilIdle()
	if got {
		t.Error("TTL-1 packet crossed the router")
	}
}

func TestNonForwardingHostDropsTransit(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	m := n.AddHost("m", packet.MakeAddr(10, 0, 0, 2)) // NOT forwarding
	b := n.AddHost("b", packet.MakeAddr(10, 0, 0, 3))
	n.Connect(a, m, LinkConfig{})
	n.Connect(m, b, LinkConfig{})
	n.ComputeRoutes()
	got := false
	b.BindUDP(9000, func(p *packet.Packet) { got = true })
	a.Send(udpTo(b, a, 9000, nil))
	eng.RunUntilIdle()
	if got {
		t.Error("non-forwarding host forwarded a packet")
	}
	// Routing refuses to transit non-forwarding hosts, so the sender has
	// no route at all.
	if a.Stats.DropsNoRoute == 0 {
		t.Error("no-route drop not counted at sender")
	}
}

func TestHooksRewriteAndDrop(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{})
	var deliveredTo packet.Port
	b.BindUDP(7777, func(p *packet.Packet) { deliveredTo = 7777 })
	b.BindUDP(9000, func(p *packet.Packet) { deliveredTo = 9000 })

	// Egress hook rewrites destination port (like a Dysco agent would).
	a.AddEgressHook(func(p *packet.Packet, dir Direction) Verdict {
		if dir != Egress {
			t.Errorf("egress hook called with %v", dir)
		}
		p.Tuple.DstPort = 7777
		return Pass
	})
	a.Send(udpTo(b, a, 9000, nil))
	eng.RunUntilIdle()
	if deliveredTo != 7777 {
		t.Errorf("delivered to %d, want rewritten 7777", deliveredTo)
	}

	// Ingress hook drops everything.
	b.AddIngressHook(func(p *packet.Packet, dir Direction) Verdict { return Drop })
	deliveredTo = 0
	a.Send(udpTo(b, a, 9000, nil))
	eng.RunUntilIdle()
	if deliveredTo != 0 {
		t.Error("dropped packet was delivered")
	}
	if b.Stats.DropsHook == 0 {
		t.Error("hook drop not counted")
	}
}

func TestHookConsumeStopsProcessing(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{})
	consumed := 0
	b.AddIngressHook(func(p *packet.Packet, dir Direction) Verdict {
		consumed++
		return Consume
	})
	b.AddIngressHook(func(p *packet.Packet, dir Direction) Verdict {
		t.Error("second hook ran after Consume")
		return Pass
	})
	a.Send(udpTo(b, a, 9000, nil))
	eng.RunUntilIdle()
	if consumed != 1 {
		t.Errorf("consumed = %d", consumed)
	}
	if b.Stats.DropsHook != 0 {
		t.Error("Consume counted as drop")
	}
}

func TestCPUCostSerializesWork(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{})
	a.Cost = CostModel{SendPacket: 10 * time.Millisecond}
	var last sim.Time
	n := 0
	b.BindUDP(9000, func(p *packet.Packet) { n++; last = eng.Now() })
	for i := 0; i < 5; i++ {
		a.Send(udpTo(b, a, 9000, nil))
	}
	eng.RunUntilIdle()
	if n != 5 {
		t.Fatalf("delivered %d", n)
	}
	if last < 50*time.Millisecond {
		t.Errorf("5 packets at 10ms CPU each done at %v, want ≥50ms", last)
	}
	if a.CPU.Busy != 50*time.Millisecond {
		t.Errorf("CPU busy = %v", a.CPU.Busy)
	}
}

func TestChecksumOffloadCost(t *testing.T) {
	run := func(offload bool) sim.Time {
		eng, _, a, b := twoHosts(t, LinkConfig{})
		a.ChecksumOffload = offload
		b.ChecksumOffload = offload
		a.Cost = CostModel{ChecksumPerKB: time.Millisecond}
		b.Cost = CostModel{ChecksumPerKB: time.Millisecond}
		done := sim.Time(0)
		b.BindUDP(9000, func(p *packet.Packet) { done = eng.Now() })
		a.Send(udpTo(b, a, 9000, make([]byte, 1000)))
		eng.RunUntilIdle()
		return done
	}
	withOff := run(true)
	without := run(false)
	if without <= withOff {
		t.Errorf("software checksum (%v) not slower than offload (%v)", without, withOff)
	}
}

func TestUnboundPortDrops(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{})
	a.Send(udpTo(b, a, 12345, nil))
	eng.RunUntilIdle()
	if b.Stats.DropsNoHandler != 1 {
		t.Errorf("DropsNoHandler = %d", b.Stats.DropsNoHandler)
	}
}

func TestComputeRoutesLineTopology(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	hosts := make([]*Host, 6)
	for i := range hosts {
		hosts[i] = n.AddHost("h", packet.MakeAddr(10, 0, 0, byte(i+1)))
		hosts[i].Forwarding = true
		if i > 0 {
			n.Connect(hosts[i-1], hosts[i], LinkConfig{Delay: time.Millisecond})
		}
	}
	n.ComputeRoutes()
	got := false
	hosts[5].BindUDP(1, func(p *packet.Packet) { got = true })
	hosts[0].Send(udpTo(hosts[5], hosts[0], 1, nil))
	eng.RunUntilIdle()
	if !got {
		t.Fatal("end-to-end delivery over 5 hops failed")
	}
	if eng.Now() < 5*time.Millisecond {
		t.Errorf("delivered at %v, want ≥5ms of propagation", eng.Now())
	}
}

func TestSendVia(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	a := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	b := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	c := n.AddHost("c", packet.MakeAddr(10, 0, 0, 3))
	b.Forwarding = true
	n.Connect(a, b, LinkConfig{})
	n.Connect(b, c, LinkConfig{})
	n.Connect(a, c, LinkConfig{}) // direct link exists
	n.ComputeRoutes()
	got := false
	c.BindUDP(9, func(p *packet.Packet) { got = true })
	// Force the packet via b even though a→c is direct.
	p := udpTo(c, a, 9, nil)
	if !a.SendVia(b.Addr, p) {
		t.Fatal("SendVia to a neighbor failed")
	}
	eng.RunUntilIdle()
	if !got {
		t.Fatal("packet not delivered via b")
	}
	if b.Stats.Forwarded != 1 {
		t.Errorf("b forwarded %d", b.Stats.Forwarded)
	}
	// No link to the target neighbor: refused.
	if a.SendVia(packet.MakeAddr(9, 9, 9, 9), udpTo(c, a, 9, nil)) {
		t.Error("SendVia to non-neighbor succeeded")
	}
}

func TestForwardedPacketsTraverseEgressHooks(t *testing.T) {
	eng := sim.NewEngine(2)
	n := New(eng)
	a := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	r := n.AddHost("r", packet.MakeAddr(10, 0, 0, 2))
	b := n.AddHost("b", packet.MakeAddr(10, 0, 0, 3))
	r.Forwarding = true
	n.Connect(a, r, LinkConfig{})
	n.Connect(r, b, LinkConfig{})
	n.ComputeRoutes()
	seen := 0
	r.AddEgressHook(func(p *packet.Packet, dir Direction) Verdict {
		seen++
		return Pass
	})
	got := false
	b.BindUDP(9, func(p *packet.Packet) { got = true })
	a.Send(udpTo(b, a, 9, nil))
	eng.RunUntilIdle()
	if !got || seen != 1 {
		t.Fatalf("egress hook on forwarded packet: seen=%d delivered=%v", seen, got)
	}
}

func TestDropAttribution(t *testing.T) {
	// Each drop lands in exactly one per-reason counter, and the legacy
	// Drops() total is the sum of them.
	eng, _, a, b := twoHosts(t, LinkConfig{Bandwidth: 1000, QueueBytes: 200})
	delivered := 0
	b.BindUDP(9000, func(p *packet.Packet) { delivered++ })
	link := a.LinkTo(b.Addr)

	// Queue-full drops: burst past the 200-byte queue.
	for i := 0; i < 5; i++ {
		a.Send(udpTo(b, a, 9000, make([]byte, 50))) // 78 bytes each
	}
	eng.RunUntilIdle()
	ds := link.DropsByReason()
	if ds.Queue == 0 || ds.Loss != 0 || ds.LinkDown != 0 || ds.Fault != 0 {
		t.Fatalf("after burst: %+v, want only Queue drops", ds)
	}

	// Link-down drops.
	link.SetDown(true)
	a.Send(udpTo(b, a, 9000, []byte("x")))
	eng.RunUntilIdle()
	link.SetDown(false)
	if got := link.DropsByReason().LinkDown; got != 1 {
		t.Fatalf("LinkDown = %d, want 1", got)
	}

	// Fault-hook drops.
	link.SetFault(func(p *packet.Packet) FaultDecision { return FaultDecision{Drop: true} })
	a.Send(udpTo(b, a, 9000, []byte("x")))
	eng.RunUntilIdle()
	link.SetFault(nil)
	if got := link.DropsByReason().Fault; got != 1 {
		t.Fatalf("Fault = %d, want 1", got)
	}

	// Random-loss drops.
	link.SetLoss(1.0)
	a.Send(udpTo(b, a, 9000, []byte("x")))
	eng.RunUntilIdle()
	link.SetLoss(0)
	if got := link.DropsByReason().Loss; got != 1 {
		t.Fatalf("Loss = %d, want 1", got)
	}

	ds = link.DropsByReason()
	if link.Drops() != ds.Total() || ds.Total() != ds.Queue+ds.Loss+ds.LinkDown+ds.Fault {
		t.Errorf("Drops()=%d inconsistent with %+v", link.Drops(), ds)
	}
}

func TestFaultHookDuplicateAndCorrupt(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{Delay: time.Millisecond})
	delivered := 0
	b.BindUDP(9000, func(p *packet.Packet) { delivered++ })
	link := a.LinkTo(b.Addr)

	// Duplicate: one send, two deliveries, no recursion beyond one copy.
	link.SetFault(func(p *packet.Packet) FaultDecision { return FaultDecision{Duplicate: true} })
	a.Send(udpTo(b, a, 9000, []byte("dup")))
	eng.RunUntilIdle()
	if delivered != 2 {
		t.Fatalf("delivered = %d after duplicate fault, want 2", delivered)
	}

	// Corrupt: the receiver's checksum check discards the packet, so the
	// application never sees damaged bytes.
	delivered = 0
	link.SetFault(func(p *packet.Packet) FaultDecision { return FaultDecision{Corrupt: true} })
	a.Send(udpTo(b, a, 9000, []byte("corrupt-me")))
	eng.RunUntilIdle()
	if delivered != 0 {
		t.Fatalf("delivered = %d after corrupt fault, want 0", delivered)
	}
	if b.Stats.DropsCorrupt != 1 {
		t.Errorf("DropsCorrupt = %d, want 1", b.Stats.DropsCorrupt)
	}
}

func TestHostDown(t *testing.T) {
	eng, _, a, b := twoHosts(t, LinkConfig{Delay: time.Millisecond})
	delivered := 0
	b.BindUDP(9000, func(p *packet.Packet) { delivered++ })

	b.SetDown(true)
	a.Send(udpTo(b, a, 9000, []byte("to-down-host")))
	eng.RunUntilIdle()
	if delivered != 0 || b.Stats.DropsHostDown != 1 {
		t.Fatalf("delivered=%d DropsHostDown=%d, want 0/1", delivered, b.Stats.DropsHostDown)
	}

	a.SetDown(true)
	a.Send(udpTo(b, a, 9000, []byte("from-down-host")))
	eng.RunUntilIdle()
	if a.Stats.DropsHostDown != 1 {
		t.Fatalf("sender DropsHostDown=%d, want 1", a.Stats.DropsHostDown)
	}

	a.SetDown(false)
	b.SetDown(false)
	a.Send(udpTo(b, a, 9000, []byte("back-up")))
	eng.RunUntilIdle()
	if delivered != 1 {
		t.Errorf("delivered=%d after hosts back up, want 1", delivered)
	}
}
