// Package netsim is the network substrate: hosts connected by duplex links
// with propagation delay, finite bandwidth, drop-tail queues and optional
// random loss, plus static shortest-path IP routing.
//
// A Host exposes ingress/egress hook chains at the host/NIC boundary —
// the exact interception point of the Dysco kernel module (§4.1 of the
// paper) — and a per-host CPU cost model so experiments can report CPU
// utilization (Figure 12) and model checksum offload (Figure 8).
package netsim

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Direction tells a hook whether the packet is entering or leaving a host.
type Direction int

// Hook directions.
const (
	Ingress Direction = iota
	Egress
)

func (d Direction) String() string {
	if d == Ingress {
		return "ingress"
	}
	return "egress"
}

// Verdict is a hook's decision about a packet.
type Verdict int

const (
	// Pass continues processing (possibly with the packet rewritten in
	// place).
	Pass Verdict = iota
	// Drop discards the packet silently.
	Drop
	// Consume means the hook took ownership (e.g. delivered it itself);
	// processing stops without counting a drop.
	Consume
)

// Hook inspects and may rewrite a packet at the host boundary.
type Hook func(p *packet.Packet, dir Direction) Verdict

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Delay is the propagation delay.
	Delay sim.Time
	// Bandwidth is in bytes per second; 0 means infinite.
	Bandwidth float64
	// QueueBytes bounds the transmit queue (drop-tail); 0 means 512 KB.
	QueueBytes int
	// LossProb drops each packet independently with this probability.
	LossProb float64
}

// Gbps expresses a link rate given in gigabits per second as bytes/second.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// Mbps expresses a link rate given in megabits per second as bytes/second.
func Mbps(m float64) float64 { return m * 1e6 / 8 }

const defaultQueueBytes = 512 << 10

// DropStats attributes one link direction's losses by cause, so failure
// experiments can tell congestion (queue overflow) from configured random
// loss, administrative link-down periods, and injected faults.
type DropStats struct {
	// Queue counts drop-tail queue overflows (congestion).
	Queue uint64
	// Loss counts the configured per-packet random loss (LossProb).
	Loss uint64
	// LinkDown counts packets offered to a link that was down.
	LinkDown uint64
	// Fault counts drops demanded by an injected fault hook.
	Fault uint64
}

// Total sums all drop causes.
func (d DropStats) Total() uint64 { return d.Queue + d.Loss + d.LinkDown + d.Fault }

// FaultDecision tells a link what an injected fault does to one packet.
// The zero value passes the packet through untouched.
type FaultDecision struct {
	// Drop discards the packet (counted as a fault drop).
	Drop bool
	// Duplicate delivers an extra deep copy of the packet.
	Duplicate bool
	// Corrupt flips bits in the payload copy before delivery (the header
	// stays routable, as with real transmission errors caught — or missed —
	// by checksums).
	Corrupt bool
	// ExtraDelay adds one-way latency to this packet (reordering: delayed
	// packets land behind later undelayed ones).
	ExtraDelay sim.Time
}

// FaultHook inspects a packet entering one link direction and returns the
// injected fault to apply. Hooks must be deterministic functions of the
// packet and their own seeded randomness.
type FaultHook func(p *packet.Packet) FaultDecision

// linkEnd is one direction of a link: the transmit side at a host.
type linkEnd struct {
	cfg       LinkConfig
	from, to  *Host
	busyUntil sim.Time
	queued    int // bytes accepted but not yet fully transmitted
	// down marks an administratively failed link direction: every packet
	// offered while down is dropped (counted in drops.LinkDown).
	down bool
	// fault, when set, is consulted for every packet before queueing.
	fault FaultHook
	// drops attributes losses in this direction by cause.
	drops DropStats
}

// CostModel is the per-packet CPU cost charged at a host. Costs are paid
// on the host's single modeled CPU, so a busy host queues packets — this
// is what makes a userspace proxy a bottleneck (Figure 12) and checksum
// software-vs-offload visible (Figure 8).
type CostModel struct {
	// RecvPacket/SendPacket are fixed per-packet costs.
	RecvPacket sim.Time
	SendPacket sim.Time
	// ChecksumPerKB is charged per kilobyte of packet on send and on
	// receive when the host does NOT offload checksums to the NIC.
	ChecksumPerKB sim.Time
	// ForwardPacket is charged when the host forwards (routes) a packet.
	ForwardPacket sim.Time
}

// DefaultCosts approximates a Linux host on the paper's testbed: a few µs
// per packet of kernel path, ~0.5 ns/byte of software checksumming.
func DefaultCosts() CostModel {
	return CostModel{
		RecvPacket:    2 * time.Microsecond,
		SendPacket:    2 * time.Microsecond,
		ChecksumPerKB: 500 * time.Nanosecond,
		ForwardPacket: 1 * time.Microsecond,
	}
}

// CPU is a single serial processor with utilization accounting.
type CPU struct {
	eng       *sim.Engine
	busyUntil sim.Time
	// Busy is total busy time since start.
	Busy sim.Time
	// Series accumulates busy time per interval when non-nil.
	Series *stats.TimeSeries
}

// Acquire charges cost of CPU time and returns the absolute virtual time at
// which the work completes (FIFO, single core).
func (c *CPU) Acquire(cost sim.Time) sim.Time {
	now := c.eng.Now()
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	c.busyUntil = start + cost
	c.Busy += cost
	if c.Series != nil && cost > 0 {
		// Attribute the busy time to the bin where the work starts; bins
		// are long (1s) relative to per-packet costs, so this is accurate.
		c.Series.Add(start, cost.Seconds())
	}
	return c.busyUntil
}

// Util returns mean utilization (busy fraction) since the start of the run.
func (c *CPU) Util() float64 {
	if c.eng.Now() == 0 {
		return 0
	}
	return float64(c.Busy) / float64(c.eng.Now())
}

// Counters aggregates per-host packet statistics.
type Counters struct {
	PacketsIn   uint64
	PacketsOut  uint64
	BytesIn     uint64
	BytesOut    uint64
	Forwarded   uint64
	DeliveredUp uint64
	DropsNoRoute,
	DropsHook,
	DropsNoHandler uint64
	// DropsHostDown counts packets that arrived at (or were sent by) a host
	// while it was down (frozen or crashed by fault injection).
	DropsHostDown uint64
	// DropsCorrupt counts packets discarded by receive-side checksum
	// verification after in-flight corruption.
	DropsCorrupt uint64
}

// Host is a machine in the simulated network: an end-host, a middlebox
// host, or a router (Forwarding=true).
type Host struct {
	Name string
	Addr packet.Addr
	Net  *Network
	CPU  *CPU
	Cost CostModel
	// ChecksumOffload models NIC checksum offload: when true, software
	// checksum cost is not charged (Figure 8a vs 8b).
	ChecksumOffload bool
	// Forwarding lets the host route packets not addressed to it.
	Forwarding bool
	Stats      Counters

	// down marks the host frozen or crashed (fault injection): every packet
	// it would send or receive is dropped until SetDown(false).
	down bool

	links    []*linkEnd
	routes   map[packet.Addr]*linkEnd
	ingress  []Hook
	egress   []Hook
	tcpDemux func(*packet.Packet)
	udpBinds map[packet.Port]func(*packet.Packet)
}

// Network owns the hosts and topology.
type Network struct {
	Eng   *sim.Engine
	hosts map[packet.Addr]*Host
	order []*Host // deterministic iteration
	// Trace, when set, observes every packet delivery (post-ingress-hook).
	Trace func(h *Host, p *packet.Packet, dir Direction)
}

// New creates an empty network on the engine.
func New(eng *sim.Engine) *Network {
	return &Network{Eng: eng, hosts: make(map[packet.Addr]*Host)}
}

// AddHost creates a host with the given name and address.
func (n *Network) AddHost(name string, addr packet.Addr) *Host {
	if _, dup := n.hosts[addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host address %v", addr))
	}
	h := &Host{
		Name:            name,
		Addr:            addr,
		Net:             n,
		CPU:             &CPU{eng: n.Eng},
		Cost:            DefaultCosts(),
		ChecksumOffload: true,
		routes:          make(map[packet.Addr]*linkEnd),
		udpBinds:        make(map[packet.Port]func(*packet.Packet)),
	}
	n.hosts[addr] = h
	n.order = append(n.order, h)
	return h
}

// Host returns the host with the given address, or nil.
func (n *Network) Host(addr packet.Addr) *Host { return n.hosts[addr] }

// Hosts returns all hosts in creation order.
func (n *Network) Hosts() []*Host { return n.order }

// Connect joins a and b with a symmetric duplex link.
func (n *Network) Connect(a, b *Host, cfg LinkConfig) {
	n.ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym joins a and b with per-direction configurations.
func (n *Network) ConnectAsym(a, b *Host, ab, ba LinkConfig) {
	if ab.QueueBytes == 0 {
		ab.QueueBytes = defaultQueueBytes
	}
	if ba.QueueBytes == 0 {
		ba.QueueBytes = defaultQueueBytes
	}
	a.links = append(a.links, &linkEnd{cfg: ab, from: a, to: b})
	b.links = append(b.links, &linkEnd{cfg: ba, from: b, to: a})
}

// ComputeRoutes (re)builds every host's next-hop table with BFS shortest
// paths (hop count). Call after topology changes.
func (n *Network) ComputeRoutes() {
	for _, src := range n.order {
		src.routes = make(map[packet.Addr]*linkEnd)
		// BFS from src.
		type qe struct {
			h     *Host
			first *linkEnd // first hop taken from src
		}
		visited := map[*Host]bool{src: true}
		queue := []qe{}
		for _, l := range src.links {
			if !visited[l.to] {
				visited[l.to] = true
				src.routes[l.to.Addr] = l
				queue = append(queue, qe{l.to, l})
			}
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if !cur.h.Forwarding {
				// Non-forwarding hosts are valid destinations but never
				// transit points.
				continue
			}
			for _, l := range cur.h.links {
				if !visited[l.to] {
					visited[l.to] = true
					src.routes[l.to.Addr] = cur.first
					queue = append(queue, qe{l.to, cur.first})
				}
			}
		}
	}
}

// AddIngressHook appends a hook run on every packet arriving from the wire,
// before local delivery or forwarding. Hooks run in registration order.
func (h *Host) AddIngressHook(fn Hook) { h.ingress = append(h.ingress, fn) }

// AddEgressHook appends a hook run on every packet leaving the host.
func (h *Host) AddEgressHook(fn Hook) { h.egress = append(h.egress, fn) }

// SetTCPDeliver installs the host's TCP stack entry point for packets
// addressed to this host.
func (h *Host) SetTCPDeliver(fn func(*packet.Packet)) { h.tcpDemux = fn }

// BindUDP registers a handler for UDP datagrams to the given local port.
func (h *Host) BindUDP(port packet.Port, fn func(*packet.Packet)) {
	h.udpBinds[port] = fn
}

// UnbindUDP removes a UDP handler.
func (h *Host) UnbindUDP(port packet.Port) { delete(h.udpBinds, port) }

func runHooks(hooks []Hook, p *packet.Packet, dir Direction) Verdict {
	for _, fn := range hooks {
		switch fn(p, dir) {
		case Drop:
			return Drop
		case Consume:
			return Consume
		case Pass:
			// Next hook decides.
		}
	}
	return Pass
}

// Send transmits a locally-originated packet: egress hooks, checksum
// (software or offloaded), then routing and link transmission.
func (h *Host) Send(p *packet.Packet) {
	switch runHooks(h.egress, p, Egress) {
	case Drop:
		h.Stats.DropsHook++
		return
	case Consume:
		return
	case Pass:
	}
	h.transmit(p, h.Cost.SendPacket)
}

// SendVia transmits a packet directly to a specific neighbor, ignoring
// destination-based routing — the primitive an SDN-style rule table needs.
// Returns false (dropping the packet) when no direct link to via exists.
func (h *Host) SendVia(via packet.Addr, p *packet.Packet) bool {
	for _, l := range h.links {
		if l.to.Addr == via {
			done := h.CPU.Acquire(h.Cost.ForwardPacket)
			h.Stats.PacketsOut++
			h.Stats.BytesOut += uint64(p.Size())
			l.send(p, done)
			return true
		}
	}
	h.Stats.DropsNoRoute++
	return false
}

// SendDirect transmits a packet without running egress hooks. Hook code
// (e.g. a Dysco agent splitting a packet across two paths) uses it to emit
// packets it has already processed, avoiding re-entering itself.
func (h *Host) SendDirect(p *packet.Packet) {
	h.transmit(p, h.Cost.SendPacket)
}

// transmit charges CPU and puts the packet on the wire toward its
// destination.
func (h *Host) transmit(p *packet.Packet, baseCost sim.Time) {
	if h.down {
		h.Stats.DropsHostDown++
		return
	}
	cost := baseCost
	if !h.ChecksumOffload {
		cost += sim.Time(int64(h.Cost.ChecksumPerKB) * int64(p.Size()) / 1024)
		p.Checksum = softwareChecksum(p)
	}
	done := h.CPU.Acquire(cost)
	le := h.routes[p.Tuple.DstIP]
	if le == nil {
		h.Stats.DropsNoRoute++
		return
	}
	h.Stats.PacketsOut++
	h.Stats.BytesOut += uint64(p.Size())
	le.send(p, done)
}

// softwareChecksum computes a transport checksum over the fields a real
// stack would cover, without allocating a full wire image. It is stable
// under RewriteTuple/RewriteSeqAck incremental updates in the sense that
// the packet tests verify against full serialization.
func softwareChecksum(p *packet.Packet) uint16 {
	var hdr [24]byte
	hdr[0] = byte(p.Tuple.SrcIP >> 24)
	hdr[1] = byte(p.Tuple.SrcIP >> 16)
	hdr[2] = byte(p.Tuple.SrcIP >> 8)
	hdr[3] = byte(p.Tuple.SrcIP)
	hdr[4] = byte(p.Tuple.DstIP >> 24)
	hdr[5] = byte(p.Tuple.DstIP >> 16)
	hdr[6] = byte(p.Tuple.DstIP >> 8)
	hdr[7] = byte(p.Tuple.DstIP)
	hdr[8] = byte(p.Tuple.SrcPort >> 8)
	hdr[9] = byte(p.Tuple.SrcPort)
	hdr[10] = byte(p.Tuple.DstPort >> 8)
	hdr[11] = byte(p.Tuple.DstPort)
	hdr[12] = byte(p.Seq >> 24)
	hdr[13] = byte(p.Seq >> 16)
	hdr[14] = byte(p.Seq >> 8)
	hdr[15] = byte(p.Seq)
	hdr[16] = byte(p.Ack >> 24)
	hdr[17] = byte(p.Ack >> 16)
	hdr[18] = byte(p.Ack >> 8)
	hdr[19] = byte(p.Ack)
	hdr[20] = byte(p.Flags)
	hdr[21] = byte(p.Tuple.Proto)
	hdr[22] = byte(p.Window >> 8)
	hdr[23] = byte(p.Window)
	return packet.Checksum(hdr[:], p.Payload)
}

// send models the transmit queue and the wire for one link direction.
func (le *linkEnd) send(p *packet.Packet, ready sim.Time) {
	eng := le.from.Net.Eng
	if le.down {
		le.drops.LinkDown++
		return
	}
	var extraDelay sim.Time
	if le.fault != nil {
		fd := le.fault(p)
		if fd.Drop {
			le.drops.Fault++
			return
		}
		if fd.Duplicate {
			// The copy takes an independent trip through the queue; a
			// duplicate of a duplicate is not possible (the hook runs once).
			dup := p.Clone()
			saved := le.fault
			le.fault = nil
			le.send(dup, ready)
			le.fault = saved
		}
		if fd.Corrupt {
			corruptPayload(p)
		}
		extraDelay = fd.ExtraDelay
	}
	size := p.Size()
	if le.cfg.LossProb > 0 && eng.Rand().Float64() < le.cfg.LossProb {
		le.drops.Loss++
		return
	}
	if le.queued+size > le.cfg.QueueBytes {
		le.drops.Queue++
		return
	}
	start := ready
	if le.busyUntil > start {
		start = le.busyUntil
	}
	var tx sim.Time
	if le.cfg.Bandwidth > 0 {
		tx = sim.Time(float64(size) / le.cfg.Bandwidth * float64(time.Second))
	}
	le.busyUntil = start + tx
	le.queued += size
	deliverAt := le.busyUntil + le.cfg.Delay + extraDelay
	dst := le.to
	from := le.from.Addr
	endOfTx := le.busyUntil
	eng.At(endOfTx, func() { le.queued -= size })
	eng.At(deliverAt, func() {
		p.ArrivedFrom = from
		dst.receive(p)
	})
}

// corruptPayload flips one bit per 64 payload bytes (at least one). A
// corrupted TCP segment still parses — the damage is to the bytes the
// application-level integrity oracles verify, and to the checksum when
// software checksumming is modeled.
func corruptPayload(p *packet.Packet) {
	p.Corrupted = true
	if len(p.Payload) == 0 {
		return
	}
	p.Payload = append([]byte(nil), p.Payload...)
	for i := 0; i < len(p.Payload); i += 64 {
		p.Payload[i] ^= 0x80
	}
}

// receive handles a packet arriving from the wire.
func (h *Host) receive(p *packet.Packet) {
	if h.down {
		h.Stats.DropsHostDown++
		return
	}
	if p.Corrupted {
		// Checksum verification (hardware offload or software) detects the
		// in-flight damage and discards the segment; the sender's
		// retransmission machinery recovers, so applications never see the
		// corrupt bytes.
		h.Stats.DropsCorrupt++
		return
	}
	h.Stats.PacketsIn++
	h.Stats.BytesIn += uint64(p.Size())
	cost := h.Cost.RecvPacket
	if !h.ChecksumOffload {
		cost += sim.Time(int64(h.Cost.ChecksumPerKB) * int64(p.Size()) / 1024)
	}
	done := h.CPU.Acquire(cost)
	h.Net.Eng.At(done, func() { h.process(p) })
}

func (h *Host) process(p *packet.Packet) {
	switch runHooks(h.ingress, p, Ingress) {
	case Drop:
		h.Stats.DropsHook++
		return
	case Consume:
		return
	case Pass:
	}
	if h.Net.Trace != nil {
		h.Net.Trace(h, p, Ingress)
	}
	if p.Tuple.DstIP == h.Addr {
		h.deliverUp(p)
		return
	}
	if !h.Forwarding {
		h.Stats.DropsNoRoute++
		return
	}
	if p.TTL <= 1 {
		h.Stats.DropsNoRoute++
		return
	}
	p.TTL--
	h.Stats.Forwarded++
	// Forwarded packets traverse egress hooks too: an agent on an edge
	// router can initiate service chains for transit traffic (§2.4
	// partial deployment).
	switch runHooks(h.egress, p, Egress) {
	case Drop:
		h.Stats.DropsHook++
		return
	case Consume:
		return
	case Pass:
	}
	h.transmit(p, h.Cost.ForwardPacket)
}

func (h *Host) deliverUp(p *packet.Packet) {
	switch p.Tuple.Proto {
	case packet.ProtoTCP:
		if h.tcpDemux != nil {
			h.Stats.DeliveredUp++
			h.tcpDemux(p)
			return
		}
	case packet.ProtoUDP:
		if fn, ok := h.udpBinds[p.Tuple.DstPort]; ok {
			h.Stats.DeliveredUp++
			fn(p)
			return
		}
	}
	h.Stats.DropsNoHandler++
}

// InjectLocal delivers a packet to this host as if it had arrived from the
// wire, bypassing links. Used by loopback-style tests and state injection.
func (h *Host) InjectLocal(p *packet.Packet) { h.receive(p) }

// DeliverLocal hands a packet directly to the host's transport demux,
// bypassing ingress hooks. A Dysco agent uses it to deliver a rewritten
// packet (whose destination address is the original session's, not this
// host's) to the local stack or application.
func (h *Host) DeliverLocal(p *packet.Packet) { h.deliverUp(p) }

// LinkTo returns the transmit link end from h toward the neighbor with
// address a (nil if not directly connected). Exposed for tests and for
// experiments that read drop counters.
func (h *Host) LinkTo(a packet.Addr) *LinkEndInfo {
	for _, l := range h.links {
		if l.to.Addr == a {
			return &LinkEndInfo{le: l}
		}
	}
	return nil
}

// Links returns this host's transmit link ends in connection order.
// Exposed for fault injectors that install hooks on every direction.
func (h *Host) Links() []*LinkEndInfo {
	out := make([]*LinkEndInfo, len(h.links))
	for i, l := range h.links {
		out[i] = &LinkEndInfo{le: l}
	}
	return out
}

// SetDown freezes or unfreezes the host. While down, every packet the host
// would send or receive is dropped (counted in DropsHostDown). Timers and
// application state are untouched — a frozen host resumes where it left
// off, a crash is modeled by the caller additionally resetting state.
func (h *Host) SetDown(down bool) { h.down = down }

// Down reports whether the host is currently down.
func (h *Host) Down() bool { return h.down }

// LinkEndInfo is a read-mostly view over one link direction.
type LinkEndInfo struct{ le *linkEnd }

// Drops returns the total packets dropped at this link end, all reasons
// combined (see DropsByReason for attribution).
func (i *LinkEndInfo) Drops() uint64 { return i.le.drops.Total() }

// DropsByReason returns the per-reason drop counters for this link end.
func (i *LinkEndInfo) DropsByReason() DropStats { return i.le.drops }

// QueuedBytes returns bytes currently in the transmit queue.
func (i *LinkEndInfo) QueuedBytes() int { return i.le.queued }

// From returns the transmitting host's address.
func (i *LinkEndInfo) From() packet.Addr { return i.le.from.Addr }

// To returns the receiving host's address.
func (i *LinkEndInfo) To() packet.Addr { return i.le.to.Addr }

// SetLoss changes the random loss probability at runtime (used by failure
// injection tests).
func (i *LinkEndInfo) SetLoss(p float64) { i.le.cfg.LossProb = p }

// SetBandwidth changes the link rate at runtime (bytes/second, 0=infinite).
func (i *LinkEndInfo) SetBandwidth(bps float64) { i.le.cfg.Bandwidth = bps }

// SetDown changes the link direction's up/down state. While down every
// packet offered to this direction is dropped (counted in LinkDown).
func (i *LinkEndInfo) SetDown(down bool) { i.le.down = down }

// IsDown reports whether this link direction is down.
func (i *LinkEndInfo) IsDown() bool { return i.le.down }

// SetFault installs (or clears, with nil) the per-packet fault hook for
// this link direction. The hook runs before loss and queue admission on
// every packet offered to the link.
func (i *LinkEndInfo) SetFault(fn FaultHook) { i.le.fault = fn }
