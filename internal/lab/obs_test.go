package lab_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/mbox"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// observedRun executes the chained-transfer-plus-reconfiguration scenario
// with observability on and returns the hub.
func observedRun(t *testing.T, seed int64) *obs.Hub {
	t.Helper()
	link := netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Gbps(1)}
	env := lab.NewEnv(seed)
	hub := env.Observe()
	client := env.AddNode("client", lab.HostOptions{Link: link, Stack: true, Agent: true})
	mb1 := env.AddNode("mb1", lab.HostOptions{Link: link, App: mbox.NewMonitor()})
	mb2 := env.AddNode("mb2", lab.HostOptions{Link: link, App: mbox.NewMonitor()})
	server := env.AddNode("server", lab.HostOptions{Link: link, Stack: true, Agent: true})
	env.Net.ComputeRoutes()
	env.ChainPolicy(client, 80, mb1)

	const total = 128 << 10
	received := 0
	server.Stack.Listen(80, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { received += len(b) }
	})
	conn := client.Stack.Connect(server.Addr(), 80, tcp.Config{})
	conn.OnEstablished = func() { conn.Send(make([]byte, total)) }
	env.RunFor(50 * time.Millisecond)
	err := client.Agent.StartReconfig(conn.Tuple(), core.ReconfigOptions{
		RightAnchor:    server.Addr(),
		NewMiddleboxes: []packet.Addr{mb2.Addr()},
		OnDone:         func(bool, sim.Time) {},
	})
	if err != nil {
		t.Fatalf("StartReconfig: %v", err)
	}
	env.RunFor(10 * time.Second)
	if received != total {
		t.Fatalf("seed %d: server received %d of %d bytes", seed, received, total)
	}
	return hub
}

// TestObservedReconfigSpan is the acceptance test of the observability
// layer: one middlebox replacement must produce a reconfiguration span
// whose lock → state-transfer → switchover → drain phases have monotone
// virtual timestamps and whose events come from at least three hosts,
// with the instrumented metrics populated alongside.
func TestObservedReconfigSpan(t *testing.T) {
	hub := observedRun(t, 7)
	events := hub.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("merged stream not time-ordered at %d", i)
		}
	}
	if hub.Truncated() {
		t.Fatal("event storage truncated; raise the limit")
	}

	spans := obs.BuildSpans(events)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Outcome != "done" {
		t.Fatalf("outcome %q:\n%s", sp.Outcome, sp.FormatTree())
	}
	if sp.LeftAnchor != "client" || sp.RightAnchor != "server" {
		t.Fatalf("anchors %q/%q", sp.LeftAnchor, sp.RightAnchor)
	}
	if len(sp.Hosts) < 3 {
		t.Fatalf("span touched %v, want >= 3 hosts", sp.Hosts)
	}
	want := []string{obs.PhaseLock, obs.PhaseStateTransfer, obs.PhaseSwitchover, obs.PhaseDrain}
	if len(sp.Phases) != len(want) {
		t.Fatalf("phases %+v", sp.Phases)
	}
	for i, ph := range sp.Phases {
		if ph.Name != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, ph.Name, want[i])
		}
		if ph.End < ph.Start {
			t.Fatalf("phase %q runs backwards: %+v", ph.Name, ph)
		}
		if i > 0 && ph.Start != sp.Phases[i-1].End {
			t.Fatalf("phases not contiguous at %d", i)
		}
	}

	// Event taxonomy coverage: the scenario exercises every Dysco kind.
	for _, k := range []obs.Kind{obs.KLock, obs.KReconfig, obs.KCtrl, obs.KSessionOpen, obs.KRewrite} {
		if hub.Count(k) == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}

	// Metrics: the rewrite path and the reconfiguration duration were
	// instrumented on the way through.
	m := hub.Metrics
	if h := m.Hist(obs.MRewriteLatency); h == nil || h.N == 0 {
		t.Fatal("rewrite latency histogram empty")
	}
	if h := m.Hist(obs.MReconfigDuration); h == nil || h.N != 1 {
		t.Fatalf("reconfig duration histogram: %v", h)
	}
}

// TestSameSeedSameEvents extends the determinism regression to the event
// stream: same seed → equal hashes and byte-identical JSON; different
// seed → different stream.
func TestSameSeedSameEvents(t *testing.T) {
	h1 := observedRun(t, 7)
	h2 := observedRun(t, 7)
	if h1.Hash() != h2.Hash() {
		t.Fatalf("same seed produced different event streams:\nrun1:\n%s\nrun2:\n%s",
			head(h1.Dump(), 40), head(h2.Dump(), 40))
	}
	var b1, b2 bytes.Buffer
	if err := h1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := h2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("same seed produced different JSON event logs")
	}
	// Unlike the packet trace, the event stream is expected to coincide
	// across seeds here: randomness reaches only quantities the event
	// vocabulary abstracts away (ISNs, timestamp clocks), so no
	// different-seed divergence assertion — TestSameSeedSameTrace already
	// proves the seed reaches the scenario.
}

// TestCausalOrderSubrange is the property behind the happens-before DAG:
// on a real recorded run, every causal edge (program order and matched
// send→recv) points forward in the merged (Time, Host, Seq) total order
// with strictly increasing Lamport clocks — causal order is a subrange
// of the Hub's total order. Any violation is a bug in edge matching or
// clock stamping, so CheckOrder failing here fails the build.
func TestCausalOrderSubrange(t *testing.T) {
	for _, seed := range []int64{7, 11} {
		hub := observedRun(t, seed)
		d := obs.BuildDAG(hub.Events())
		if err := d.CheckOrder(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d.MessageEdges == 0 {
			t.Fatalf("seed %d: no send→recv edges matched — clock piggybacking broken", seed)
		}
		// On a loss-free run every control transmission is delivered and
		// observed, so no send may dangle.
		if d.DeadEndSends != 0 {
			t.Fatalf("seed %d: %d dead-end sends on a loss-free run", seed, d.DeadEndSends)
		}
		// Every ctrl recv must have been matched back to a transmission.
		for i, e := range d.Events {
			if e.Kind != obs.KCtrl || e.Dir != "recv" {
				continue
			}
			msg := 0
			for _, p := range d.Preds(i) {
				if p.Kind == obs.EdgeMessage {
					msg++
				}
			}
			if msg != 1 {
				t.Fatalf("seed %d: recv %s has %d message edges, want 1", seed, e, msg)
			}
		}
		// Same run, same graph.
		if d.DagHash() != obs.BuildDAG(hub.Events()).DagHash() {
			t.Fatalf("seed %d: DagHash not deterministic", seed)
		}
	}
}

// TestCriticalPathOnRecordedRun pins the acceptance criterion: each
// reconfiguration span's critical path is a valid causal chain whose
// end-to-end time equals the span's Took(), crosses hosts via message
// edges, and renders byte-identically across same-seed runs.
func TestCriticalPathOnRecordedRun(t *testing.T) {
	hub := observedRun(t, 7)
	spans := obs.BuildSpans(hub.Events())
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	sp := spans[0]
	cp := obs.CriticalPath(sp)
	if err := cp.Validate(); err != nil {
		t.Fatalf("Validate: %v\n%s", err, cp.FormatTree())
	}
	if cp.Took() != sp.Took() {
		t.Fatalf("path took %v, span took %v", cp.Took(), sp.Took())
	}
	if cp.MsgWait == 0 {
		t.Fatalf("a multi-host reconfiguration must wait on messages:\n%s", cp.FormatTree())
	}
	hosts := map[string]bool{}
	for _, seg := range cp.Segments {
		hosts[seg.Event.Host] = true
	}
	if len(hosts) < 2 {
		t.Fatalf("critical path stayed on %v, want >= 2 hosts", hosts)
	}
	// Per-phase waits decompose the whole duration.
	var sum sim.Time
	for _, pw := range cp.PhaseWaits {
		sum += pw.Wait
	}
	if sum != sp.Took() {
		t.Fatalf("phase waits sum to %v, span took %v\n%s", sum, sp.Took(), cp.FormatTree())
	}
	// Determinism: an independent same-seed run renders the same path.
	hub2 := observedRun(t, 7)
	cp2 := obs.CriticalPath(obs.BuildSpans(hub2.Events())[0])
	if cp.FormatTree() != cp2.FormatTree() {
		t.Fatalf("critical path not deterministic:\n%s\nvs\n%s", cp.FormatTree(), cp2.FormatTree())
	}
}
