// Package lab builds the simulated testbeds shared by the integration
// tests, the examples, and the benchmark harness: hosts with TCP stacks
// and Dysco agents in a star topology around a router (the shape of the
// paper's Figure 11 testbed), plus line-chain policies.
package lab

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Node bundles a host with its optional stack and agent.
type Node struct {
	Host  *netsim.Host
	Stack *tcp.Stack
	Agent *core.Agent
}

// Addr is shorthand for the node's address.
func (n *Node) Addr() packet.Addr { return n.Host.Addr }

// Env is a simulated testbed.
type Env struct {
	Eng    *sim.Engine
	Net    *netsim.Network
	Router *netsim.Host
	nodes  map[string]*Node
	names  []string
	next   byte
	hub    *obs.Hub
}

// NewEnv creates an engine, a network, and a central forwarding router at
// 10.0.0.254.
func NewEnv(seed int64) *Env {
	eng := sim.NewEngine(seed)
	n := netsim.New(eng)
	router := n.AddHost("router", packet.MakeAddr(10, 0, 0, 254))
	router.Forwarding = true
	return &Env{
		Eng:    eng,
		Net:    n,
		Router: router,
		nodes:  make(map[string]*Node),
		next:   1,
	}
}

// HostOptions configures a new node.
type HostOptions struct {
	// Link is the access link to the router (both directions).
	Link netsim.LinkConfig
	// Stack attaches a TCP stack.
	Stack bool
	// Agent attaches a Dysco agent with the given config.
	Agent    bool
	AgentCfg core.Config
	// App is the packet-level middlebox application (implies Agent).
	App core.App
	// ChecksumOffload controls the NIC offload model (default true).
	NoOffload bool
	// NoRouterLink skips the default access link to the router; connect
	// the host manually (used by line-topology baselines).
	NoRouterLink bool
}

// AddNode creates a host connected to the router.
func (e *Env) AddNode(name string, opt HostOptions) *Node {
	if _, dup := e.nodes[name]; dup {
		panic(fmt.Sprintf("lab: duplicate node %q", name))
	}
	addr := packet.MakeAddr(10, 0, byte(e.next>>7), e.next)
	e.next++
	if e.next == 254 {
		e.next++
	}
	h := e.Net.AddHost(name, addr)
	h.ChecksumOffload = !opt.NoOffload
	if !opt.NoRouterLink {
		e.Net.Connect(h, e.Router, opt.Link)
	}
	node := &Node{Host: h}
	if opt.Stack {
		node.Stack = tcp.NewStack(h)
	}
	if opt.Agent || opt.App != nil {
		node.Agent = core.NewAgent(h, opt.AgentCfg)
		node.Agent.App = opt.App
		if node.Stack != nil {
			s := node.Stack
			node.Agent.SetFindConn(func(local packet.FiveTuple) core.ConnView {
				if c := s.Find(local); c != nil {
					return c
				}
				return nil
			})
		}
	}
	e.nodes[name] = node
	e.names = append(e.names, name)
	if e.hub != nil {
		e.attach(node)
	}
	return node
}

// Observe turns on structured observability for the testbed: every node
// (existing and future) gets a per-host event recorder feeding one hub,
// whose merged event stream and metrics registry the caller inspects or
// hashes. Idempotent; returns the same hub on repeat calls.
func (e *Env) Observe() *obs.Hub {
	if e.hub == nil {
		e.hub = obs.NewHub(e.Eng)
		for _, name := range e.names {
			e.attach(e.nodes[name])
		}
	}
	return e.hub
}

// Hub returns the observability hub, or nil when Observe was never called.
func (e *Env) Hub() *obs.Hub { return e.hub }

func (e *Env) attach(n *Node) {
	r := e.hub.Recorder(n.Host.Name)
	if n.Agent != nil {
		n.Agent.SetRecorder(r)
	}
	if n.Stack != nil {
		n.Stack.SetRecorder(r)
	}
}

// Node returns a node by name (nil if absent).
func (e *Env) Node(name string) *Node { return e.nodes[name] }

// RunFor advances virtual time by d.
func (e *Env) RunFor(d sim.Time) { e.Eng.Run(e.Eng.Now() + d) }

// RunUntil advances virtual time to the absolute instant t.
func (e *Env) RunUntil(t sim.Time) { e.Eng.Run(t) }

// ChainPolicy installs a policy on the node's agent steering sessions to
// dstPort through the listed middlebox nodes, in order.
func (e *Env) ChainPolicy(n *Node, dstPort packet.Port, mboxes ...*Node) {
	var chain []packet.Addr
	for _, m := range mboxes {
		chain = append(chain, m.Addr())
	}
	prev := n.Agent.Policy
	n.Agent.Policy = func(p *packet.Packet) []packet.Addr {
		if p.Tuple.DstPort == dstPort {
			return chain
		}
		if prev != nil {
			return prev(p)
		}
		return nil
	}
}
