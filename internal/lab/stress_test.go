package lab_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/mbox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// TestConcurrentEnvsNoSharedState runs many complete simulations — TCP
// transfer through a chained middlebox plus a live mid-stream
// reconfiguration, the daemon's full lock/session path — concurrently,
// each on its own engine. Every engine is single-threaded by design, so
// the only way this test can trip the race detector is a hidden shared
// global (package-level map, cached buffer, unsynchronized counter)
// leaking between independent simulations. Run with -race.
func TestConcurrentEnvsNoSharedState(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if err := runChainedTransfer(seed); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}(int64(g + 1))
	}
	wg.Wait()
}

// runChainedTransfer is one full scenario: client -> monitor -> server,
// 256 KiB of data, then the monitor is replaced mid-stream by a second
// one via the daemon's reconfiguration protocol.
func runChainedTransfer(seed int64) error {
	link := netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Gbps(1)}
	env := lab.NewEnv(seed)
	client := env.AddNode("client", lab.HostOptions{Link: link, Stack: true, Agent: true})
	mb1 := env.AddNode("mb1", lab.HostOptions{Link: link, App: mbox.NewMonitor()})
	mb2 := env.AddNode("mb2", lab.HostOptions{Link: link, App: mbox.NewMonitor()})
	server := env.AddNode("server", lab.HostOptions{Link: link, Stack: true, Agent: true})
	env.Net.ComputeRoutes()
	env.ChainPolicy(client, 80, mb1)

	const total = 256 << 10
	received := 0
	server.Stack.Listen(80, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { received += len(b) }
	})
	conn := client.Stack.Connect(server.Addr(), 80, tcp.Config{})
	var sendErr error
	conn.OnEstablished = func() { sendErr = conn.Send(make([]byte, total)) }
	env.RunFor(50 * time.Millisecond)
	if sendErr != nil {
		return fmt.Errorf("send: %w", sendErr)
	}

	reconfigOK := false
	err := client.Agent.StartReconfig(conn.Tuple(), core.ReconfigOptions{
		RightAnchor:    server.Addr(),
		NewMiddleboxes: []packet.Addr{mb2.Addr()},
		OnDone:         func(ok bool, _ sim.Time) { reconfigOK = ok },
	})
	if err != nil {
		return fmt.Errorf("StartReconfig: %w", err)
	}
	env.RunFor(10 * time.Second)
	if !reconfigOK {
		return fmt.Errorf("reconfiguration did not complete")
	}
	if received != total {
		return fmt.Errorf("server received %d of %d bytes", received, total)
	}
	return nil
}
