package lab_test

import (
	"testing"
	"time"

	"repro/internal/lab"
	"repro/internal/mbox"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

func TestEnvWiring(t *testing.T) {
	env := lab.NewEnv(1)
	link := netsim.LinkConfig{Delay: 100 * time.Microsecond}
	a := env.AddNode("a", lab.HostOptions{Link: link, Stack: true, Agent: true})
	m := env.AddNode("m", lab.HostOptions{Link: link, App: &mbox.Forwarder{}})
	b := env.AddNode("b", lab.HostOptions{Link: link, Stack: true, Agent: true})
	env.Net.ComputeRoutes()
	env.ChainPolicy(a, 80, m)

	if env.Node("a") != a || env.Node("missing") != nil {
		t.Error("Node lookup broken")
	}
	if a.Agent == nil || a.Stack == nil || m.Agent == nil || m.Agent.App == nil {
		t.Fatal("node options not applied")
	}

	got := 0
	b.Stack.Listen(80, func(c *tcp.Conn) {
		c.OnData = func(p []byte) { got += len(p) }
	})
	c := a.Stack.Connect(b.Addr(), 80, tcp.Config{})
	c.OnEstablished = func() { c.Send(make([]byte, 5000)) }
	env.RunFor(time.Second)
	if got != 5000 {
		t.Fatalf("chained transfer delivered %d", got)
	}
	if m.Agent.Stats.PacketsRewritten == 0 {
		t.Error("chain did not traverse the middlebox")
	}
	if env.Eng.Now() != time.Second {
		t.Errorf("RunFor did not advance: %v", env.Eng.Now())
	}
}

func TestChainPolicyStacks(t *testing.T) {
	env := lab.NewEnv(2)
	link := netsim.LinkConfig{Delay: 100 * time.Microsecond}
	a := env.AddNode("a", lab.HostOptions{Link: link, Stack: true, Agent: true})
	m1 := env.AddNode("m1", lab.HostOptions{Link: link, App: &mbox.Forwarder{}})
	m2 := env.AddNode("m2", lab.HostOptions{Link: link, App: &mbox.Forwarder{}})
	b := env.AddNode("b", lab.HostOptions{Link: link, Stack: true, Agent: true})
	env.Net.ComputeRoutes()
	// Two policies on the same agent: port 80 via m1, port 81 via m2.
	env.ChainPolicy(a, 80, m1)
	env.ChainPolicy(a, 81, m2)

	got80, got81 := 0, 0
	b.Stack.Listen(80, func(c *tcp.Conn) { c.OnData = func(p []byte) { got80 += len(p) } })
	b.Stack.Listen(81, func(c *tcp.Conn) { c.OnData = func(p []byte) { got81 += len(p) } })
	c80 := a.Stack.Connect(b.Addr(), 80, tcp.Config{})
	c80.OnEstablished = func() { c80.Send([]byte("eighty")) }
	c81 := a.Stack.Connect(b.Addr(), 81, tcp.Config{})
	c81.OnEstablished = func() { c81.Send([]byte("eighty-one")) }
	env.RunFor(time.Second)

	if got80 != 6 || got81 != 10 {
		t.Fatalf("transfers: %d/%d", got80, got81)
	}
	f1 := m1.Agent.App.(*mbox.Forwarder)
	f2 := m2.Agent.App.(*mbox.Forwarder)
	if f1.Packets == 0 || f2.Packets == 0 {
		t.Errorf("policies not routed distinctly: m1=%d m2=%d", f1.Packets, f2.Packets)
	}
}
