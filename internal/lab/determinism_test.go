package lab_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/mbox"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// TestSameSeedSameTrace runs the full chained-transfer-plus-reconfiguration
// scenario twice with the same seed and requires the byte-identical packet
// trace. This is the regression test for the determinism invariants the
// lint suite enforces statically (no wall clock, no unseeded randomness,
// no effects from map iteration): if any of them regresses dynamically,
// the two traces diverge here.
func TestSameSeedSameTrace(t *testing.T) {
	h1, d1 := tracedRun(t, 7)
	h2, d2 := tracedRun(t, 7)
	if h1 != h2 || d1 != d2 {
		t.Fatalf("same seed produced different traces (hash %#x vs %#x):\nrun1:\n%s\nrun2:\n%s",
			h1, h2, head(d1, 40), head(d2, 40))
	}
	// Different seeds must actually reach the randomness (ISNs, timer
	// jitter): identical traces would mean the seed is ignored and the
	// test above is vacuous.
	h3, _ := tracedRun(t, 8)
	if h1 == h3 {
		t.Fatalf("seeds 7 and 8 produced identical traces; seed is not reaching the scenario")
	}
}

// tracedRun executes one seeded scenario with a capture on every host
// boundary and returns the trace hash and rendering.
func tracedRun(t *testing.T, seed int64) (uint64, string) {
	t.Helper()
	link := netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Gbps(1)}
	env := lab.NewEnv(seed)
	client := env.AddNode("client", lab.HostOptions{Link: link, Stack: true, Agent: true})
	mb1 := env.AddNode("mb1", lab.HostOptions{Link: link, App: mbox.NewMonitor()})
	mb2 := env.AddNode("mb2", lab.HostOptions{Link: link, App: mbox.NewMonitor()})
	server := env.AddNode("server", lab.HostOptions{Link: link, Stack: true, Agent: true})
	env.Net.ComputeRoutes()
	env.ChainPolicy(client, 80, mb1)

	cap := trace.New(env.Eng, nil)
	for _, n := range []*lab.Node{client, mb1, mb2, server} {
		cap.Attach(n.Host)
	}

	const total = 128 << 10
	received := 0
	server.Stack.Listen(80, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { received += len(b) }
	})
	conn := client.Stack.Connect(server.Addr(), 80, tcp.Config{})
	var sendErr error
	conn.OnEstablished = func() { sendErr = conn.Send(make([]byte, total)) }
	env.RunFor(50 * time.Millisecond)
	if sendErr != nil {
		t.Fatalf("send: %v", sendErr)
	}
	err := client.Agent.StartReconfig(conn.Tuple(), core.ReconfigOptions{
		RightAnchor:    server.Addr(),
		NewMiddleboxes: []packet.Addr{mb2.Addr()},
		OnDone:         func(bool, sim.Time) {},
	})
	if err != nil {
		t.Fatalf("StartReconfig: %v", err)
	}
	env.RunFor(10 * time.Second)
	if received != total {
		t.Fatalf("seed %d: server received %d of %d bytes", seed, received, total)
	}
	if cap.Truncated {
		t.Fatalf("seed %d: capture truncated; raise the limit", seed)
	}
	return cap.Hash(), cap.Dump()
}

// head returns the first n lines of s.
func head(s string, n int) string {
	lines := 0
	for i := range s {
		if s[i] == '\n' {
			if lines++; lines == n {
				return s[:i+1]
			}
		}
	}
	return s
}
