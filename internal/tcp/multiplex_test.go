package tcp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// TestManyFlowsNoRetransmissionStorm is the regression test for the SACK
// retransmission-cursor fix: with many flows congesting one bottleneck,
// retransmissions must stay proportional to actual drops, not explode
// into duplicates of the same hole (each dup ACK used to resend it).
func TestManyFlowsNoRetransmissionStorm(t *testing.T) {
	eng := sim.NewEngine(5)
	n := netsim.New(eng)
	hc := n.AddHost("c", packet.MakeAddr(10, 0, 0, 1))
	hs := n.AddHost("s", packet.MakeAddr(10, 0, 0, 2))
	link := netsim.LinkConfig{Delay: 20 * time.Microsecond, Bandwidth: netsim.Mbps(500), QueueBytes: 1 << 20}
	n.Connect(hc, hs, link)
	n.ComputeRoutes()
	client := NewStack(hc)
	server := NewStack(hs)
	delivered := 0
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { delivered += len(b) }
	})
	var conns []*Conn
	const flows = 20
	for i := 0; i < flows; i++ {
		c := client.Connect(hs.Addr, 80, Config{})
		cc := c
		refill := func() {
			for cc.BufferedOut() < 128<<10 {
				if cc.Send(make([]byte, 16<<10)) != nil {
					return
				}
			}
		}
		c.OnEstablished = refill
		c.OnSendBufferLow = refill
		conns = append(conns, c)
	}
	eng.Run(4 * time.Second)

	var rtx uint64
	for _, c := range conns {
		rtx += c.Stats.Retransmits
	}
	drops := hc.LinkTo(hs.Addr).Drops()
	if drops == 0 {
		t.Skip("no congestion drops with this seed; nothing to check")
	}
	// Each drop should cost at most a handful of retransmissions.
	if rtx > 10*drops+100 {
		t.Fatalf("retransmission storm: %d retransmits for %d drops", rtx, drops)
	}
	// And the link must be well utilized: ≥60%% of 500 Mbps over 4s.
	util := float64(delivered) * 8 / 4 / 500e6
	if util < 0.6 {
		t.Fatalf("utilization collapsed: %.1f%% (rtx=%d drops=%d)", util*100, rtx, drops)
	}
}

// TestCwndValidationAppLimited: an application-limited flow must not grow
// its congestion window without evidence (RFC 2861 style).
func TestCwndValidationAppLimited(t *testing.T) {
	eng := sim.NewEngine(3)
	n := netsim.New(eng)
	hc := n.AddHost("c", packet.MakeAddr(10, 0, 0, 1))
	hs := n.AddHost("s", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(hc, hs, netsim.LinkConfig{Delay: 5 * time.Millisecond, Bandwidth: netsim.Gbps(1)})
	n.ComputeRoutes()
	client := NewStack(hc)
	server := NewStack(hs)
	server.Listen(80, func(c *Conn) {})
	c := client.Connect(hs.Addr, 80, Config{})
	eng.Run(time.Second)
	// Trickle 2 KB every 50 ms: never window-limited.
	for i := 0; i < 40; i++ {
		c.Send(make([]byte, 2048))
		eng.Run(eng.Now() + 50*time.Millisecond)
	}
	if c.Cwnd() > 64*c.MSS() {
		t.Fatalf("app-limited flow inflated cwnd to %d segments", c.Cwnd()/c.MSS())
	}
}
