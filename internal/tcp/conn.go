package tcp

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// State is the TCP connection state.
type State int

// TCP states (RFC 793 names).
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateClosing
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "SYN-SENT", "SYN-RCVD", "ESTABLISHED", "FIN-WAIT-1",
	"FIN-WAIT-2", "CLOSE-WAIT", "LAST-ACK", "CLOSING", "TIME-WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// timeWaitDur is how long TIME-WAIT lingers. Short relative to real TCP's
// 2MSL, long relative to simulated RTTs; keeps long sweeps bounded.
const timeWaitDur = time.Second

// Stats counts per-connection events.
type Stats struct {
	BytesSent       uint64
	BytesRcvd       uint64
	SegsSent        uint64
	SegsRcvd        uint64
	Retransmits     uint64
	FastRetransmits uint64
	Timeouts        uint64
	DupAcksRcvd     uint64
	PAWSDrops       uint64
	BadSACKDrops    uint64
}

// Conn is one TCP connection endpoint.
type Conn struct {
	stack *Stack
	eng   *sim.Engine
	cfg   Config
	tuple packet.FiveTuple // Src = local end
	state State

	// Application callbacks. Set them before data can arrive (immediately
	// after Connect, or inside the accept callback).
	OnEstablished func()
	OnData        func([]byte)
	OnPeerFIN     func() // peer will send no more data
	OnClosed      func() // connection fully terminated
	OnReset       func()
	// OnSendBufferLow fires when acknowledged progress drains the send
	// buffer below 128 KB; bulk senders refill from it.
	OnSendBufferLow func()
	onAccept        func(*Conn)

	// Send state.
	iss        uint32
	sndUna     uint32
	sndNxt     uint32
	sndBuf     []byte // bytes [sndUna, sndUna+len); unacked + unsent
	finQueued  bool
	finSent    bool
	closed     bool // app called Close
	cwnd       int  // bytes
	ssthresh   int  // bytes
	dupAcks    int
	inRecovery bool
	lossMode   bool // RTO-driven recovery (CA_Loss): every unsacked byte below recoverPt is lost
	recoverPt  uint32
	rtxCursor  uint32 // next sequence eligible for hole retransmission
	peerWnd    int    // scaled receive window of the peer
	scoreboard sackScoreboard

	// Negotiated options.
	mss       int
	sndWScale int8 // shift to apply to windows the peer advertises
	rcvWScale int8 // shift the peer applies to windows we advertise
	sackOK    bool
	tsOK      bool
	tsRecent  uint32

	// RTT estimation (unexported; see SRTT/RTO accessors).
	srtt, rttvar sim.Time
	rto          sim.Time
	hasRTT       bool
	rttSeq       uint32
	rttAt        sim.Time
	rttArmed     bool
	rttClean     bool // no retransmit since sample armed (Karn)

	// Receive state.
	irs      uint32
	rcvNxt   uint32
	ooo      []oooSeg
	oooBytes int
	lastOOO  packet.SACKBlock
	finRcvd  bool
	peerFIN  bool // FIN consumed in-order

	// Timers.
	rtxTimer     *sim.Timer
	persistTimer *sim.Timer
	twTimer      *sim.Timer

	Stats Stats
}

type oooSeg struct {
	seq  uint32
	data []byte
	fin  bool
}

func newConn(s *Stack, tuple packet.FiveTuple, cfg Config) *Conn {
	cfg.fillDefaults()
	c := &Conn{
		stack:   s,
		eng:     s.eng,
		cfg:     cfg,
		tuple:   tuple,
		state:   StateClosed,
		mss:     cfg.MSS,
		peerWnd: 65535,
		rto:     cfg.MinRTO * 5, // initial RTO ≈ 1 s
	}
	c.rtxTimer = sim.NewTimer(c.eng, c.onRetransmitTimeout)
	c.persistTimer = sim.NewTimer(c.eng, c.onPersistTimeout)
	c.twTimer = sim.NewTimer(c.eng, c.onTimeWaitDone)
	c.iss = s.eng.Rand().Uint32()
	c.sndUna, c.sndNxt = c.iss, c.iss
	c.sndWScale, c.rcvWScale = 0, 0
	return c
}

// Tuple returns the connection's five-tuple from the local perspective
// (Src = local address/port).
func (c *Conn) Tuple() packet.FiveTuple { return c.tuple }

// State returns the current TCP state.
func (c *Conn) State() State { return c.state }

// ISS and IRS return the initial send/receive sequence numbers.
func (c *Conn) ISS() uint32 { return c.iss }

// IRS returns the initial receive sequence number.
func (c *Conn) IRS() uint32 { return c.irs }

// SndNxt returns the next sequence number to be sent.
func (c *Conn) SndNxt() uint32 { return c.sndNxt }

// SndUna returns the oldest unacknowledged sequence number.
func (c *Conn) SndUna() uint32 { return c.sndUna }

// RcvNxt returns the next expected receive sequence number.
func (c *Conn) RcvNxt() uint32 { return c.rcvNxt }

// Cwnd returns the congestion window in bytes (Figure 14 samples this).
func (c *Conn) Cwnd() int { return c.cwnd }

// MSS returns the negotiated maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// SACKEnabled reports whether SACK was negotiated.
func (c *Conn) SACKEnabled() bool { return c.sackOK }

// BufferedOut returns bytes accepted by Send but not yet acknowledged.
func (c *Conn) BufferedOut() int { return len(c.sndBuf) }

// RcvWScale returns the shift this endpoint applies to windows it
// advertises (its own negotiated offer; 0 when scaling is off).
func (c *Conn) RcvWScale() int8 { return c.rcvWScale }

// SndWScale returns the shift this endpoint applies to windows it receives
// (the peer's negotiated offer).
func (c *Conn) SndWScale() int8 { return c.sndWScale }

// TSRecent returns the highest timestamp value received from the peer.
func (c *Conn) TSRecent() uint32 { return c.tsRecent }

// TSNow returns the stack's timestamp clock.
func (c *Conn) TSNow() uint32 { return c.stack.tsNow() }

// Detach silently destroys the connection without emitting FIN or RST.
// A Dysco agent detaches a proxy's connections after the proxy has been
// spliced out of the chain and the old path torn down: the sessions
// continue end-to-end, so no wire-visible teardown may happen.
func (c *Conn) Detach() {
	if c.state != StateClosed {
		c.destroy()
	}
}

// startActiveOpen sends the initial SYN.
func (c *Conn) startActiveOpen() {
	c.state = StateSynSent
	c.cwnd = c.cfg.InitialCwndSegs * c.mss
	c.ssthresh = 1 << 30
	c.sendSYN(false)
	c.rtxTimer.Reset(c.rto)
}

// startPassiveOpen responds to a received SYN.
func (c *Conn) startPassiveOpen(syn *packet.Packet) {
	c.state = StateSynRcvd
	c.irs = syn.Seq
	c.rcvNxt = packet.SeqAdd(syn.Seq, 1)
	c.negotiate(&syn.Opts)
	c.cwnd = c.cfg.InitialCwndSegs * c.mss
	c.ssthresh = 1 << 30
	c.peerWnd = int(syn.Window) // unscaled on SYN
	c.sendSYN(true)
	c.rtxTimer.Reset(c.rto)
}

// negotiate folds the peer's SYN options into the connection.
func (c *Conn) negotiate(o *packet.Options) {
	if o.MSS != 0 && int(o.MSS) < c.mss {
		c.mss = int(o.MSS)
	}
	c.sackOK = !c.cfg.DisableSACK && o.SACKPermitted
	c.tsOK = !c.cfg.DisableTimestamps && o.TS != nil
	if o.TS != nil {
		c.tsRecent = o.TS.Val
	}
	if c.cfg.WScale >= 0 && o.WScale >= 0 {
		c.sndWScale = o.WScale
		c.rcvWScale = c.cfg.WScale
	} else {
		c.sndWScale, c.rcvWScale = 0, 0
	}
}

func (c *Conn) synOptions() packet.Options {
	o := packet.NoOptions()
	o.MSS = uint16(c.cfg.MSS)
	if c.cfg.WScale >= 0 {
		o.WScale = c.cfg.WScale
	}
	o.SACKPermitted = !c.cfg.DisableSACK
	if !c.cfg.DisableTimestamps {
		o.TS = &packet.Timestamp{Val: c.stack.tsNow(), Ecr: c.tsRecent}
	}
	return o
}

func (c *Conn) sendSYN(withAck bool) {
	flags := packet.FlagSYN
	ack := uint32(0)
	if withAck {
		flags |= packet.FlagACK
		ack = c.rcvNxt
	}
	p := packet.NewTCP(c.tuple, flags, c.iss, ack, nil)
	p.Opts = c.synOptions()
	p.Window = uint16(min(c.recvWindow(), 65535)) // never scaled on SYN
	c.sndNxt = packet.SeqAdd(c.iss, 1)
	c.Stats.SegsSent++
	c.stack.Host.Send(p)
}

// Send queues application data for transmission. It returns an error if
// the connection cannot accept more data (closing or closed).
func (c *Conn) Send(data []byte) error {
	if c.closed {
		return fmt.Errorf("tcp: Send on closed connection (%v)", c.state)
	}
	switch c.state {
	case StateClosed, StateLastAck, StateClosing, StateTimeWait, StateFinWait1, StateFinWait2:
		return fmt.Errorf("tcp: Send in state %v", c.state)
	case StateSynSent, StateSynRcvd, StateEstablished, StateCloseWait:
		// Sending side still open: queue below (data drains once established).
	}
	c.sndBuf = append(c.sndBuf, data...)
	if c.state == StateEstablished || c.state == StateCloseWait {
		c.trySend()
	}
	return nil
}

// Close ends the sending direction: queued data is flushed, then a FIN is
// sent. Receiving continues until the peer closes.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.finQueued = true
	switch c.state {
	case StateSynSent:
		// Never established; just drop state.
		c.destroy()
	case StateEstablished, StateCloseWait, StateSynRcvd:
		c.trySend()
	case StateClosed, StateFinWait1, StateFinWait2, StateClosing, StateLastAck, StateTimeWait:
		// Close already in progress (or done): the first Close owns the FIN.
	}
}

// Abort sends RST and destroys the connection immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	p := packet.NewTCP(c.tuple, packet.FlagRST|packet.FlagACK, c.sndNxt, c.rcvNxt, nil)
	c.stack.Host.Send(p)
	c.destroy()
}

func (c *Conn) destroy() {
	c.state = StateClosed
	c.rtxTimer.Stop()
	c.persistTimer.Stop()
	c.twTimer.Stop()
	c.stack.removeConn(c)
}

func (c *Conn) onTimeWaitDone() {
	if c.state == StateTimeWait {
		c.fullClose()
	}
}

func (c *Conn) fullClose() {
	c.destroy()
	if c.OnClosed != nil {
		c.OnClosed()
	}
}

// input is the single entry point for packets from the wire.
func (c *Conn) input(p *packet.Packet) {
	c.Stats.SegsRcvd++
	if p.Flags.Has(packet.FlagRST) {
		c.handleRST(p)
		return
	}
	switch c.state {
	case StateSynSent:
		c.inputSynSent(p)
		return
	case StateSynRcvd:
		c.inputSynRcvd(p)
		return
	case StateClosed:
		return
	case StateEstablished, StateFinWait1, StateFinWait2, StateCloseWait, StateClosing, StateLastAck, StateTimeWait:
		// Established or later: common path below.
	}
	if c.tsOK && p.Opts.TS != nil && !c.pawsOK(p) {
		c.Stats.PAWSDrops++
		return
	}
	if c.sackOK && len(p.Opts.SACK) > 0 && !c.sackBlocksValid(p.Opts.SACK) {
		// The paper (§4.2) relies on this Linux behaviour: packets whose
		// SACK blocks carry sequence numbers invalid for the session are
		// discarded entirely; Dysco must translate blocks across spliced
		// sessions to avoid it.
		c.Stats.BadSACKDrops++
		return
	}
	if p.Opts.TS != nil {
		// Track highest timestamp seen for echo and PAWS.
		if int32(p.Opts.TS.Val-c.tsRecent) > 0 {
			c.tsRecent = p.Opts.TS.Val
		}
	}
	if p.Flags.Has(packet.FlagACK) {
		c.processAck(p)
	}
	if len(p.Payload) > 0 || p.Flags.Has(packet.FlagFIN) {
		c.processData(p)
	}
	c.postInput()
}

// pawsOK implements the PAWS-style staleness check: a timestamp far behind
// the highest seen is rejected (Linux discards such packets, which is why
// Dysco translates timestamps across spliced sessions).
func (c *Conn) pawsOK(p *packet.Packet) bool {
	const maxBackwardMS = 1000
	return int32(c.tsRecent-p.Opts.TS.Val) <= maxBackwardMS
}

func (c *Conn) sackBlocksValid(blocks []packet.SACKBlock) bool {
	for _, b := range blocks {
		if packet.SeqGEQ(b.Start, b.End) {
			return false
		}
		if packet.SeqGT(b.End, c.sndNxt) {
			return false
		}
	}
	return true
}

func (c *Conn) handleRST(p *packet.Packet) {
	// Minimal validation: RST must be in the receive window (or ack our SYN
	// in SYN-SENT).
	if c.state == StateSynSent {
		if !p.Flags.Has(packet.FlagACK) || p.Ack != packet.SeqAdd(c.iss, 1) {
			return
		}
	} else if !packet.SeqGEQ(p.Seq, c.rcvNxt) && p.Seq != packet.SeqAdd(c.rcvNxt, -1) {
		return
	}
	c.destroy()
	if c.OnReset != nil {
		c.OnReset()
	}
}

func (c *Conn) inputSynSent(p *packet.Packet) {
	if !p.Flags.Has(packet.FlagSYN) || !p.Flags.Has(packet.FlagACK) {
		return
	}
	if p.Ack != packet.SeqAdd(c.iss, 1) {
		c.stack.sendRST(p)
		return
	}
	c.irs = p.Seq
	c.rcvNxt = packet.SeqAdd(p.Seq, 1)
	c.negotiate(&p.Opts)
	c.sndUna = p.Ack
	c.peerWnd = int(p.Window) // SYN windows are unscaled
	c.state = StateEstablished
	c.rtxTimer.Stop()
	c.rto = c.cfg.MinRTO
	c.stack.Connected++
	c.sendAck()
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
	c.trySend()
}

func (c *Conn) inputSynRcvd(p *packet.Packet) {
	if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
		// SYN retransmission: resend SYN-ACK.
		c.sndNxt = c.iss // sendSYN will advance again
		c.sendSYN(true)
		return
	}
	if !p.Flags.Has(packet.FlagACK) || p.Ack != packet.SeqAdd(c.iss, 1) {
		return
	}
	c.sndUna = p.Ack
	c.peerWnd = int(p.Window) << c.sndWScale
	c.state = StateEstablished
	c.rtxTimer.Stop()
	c.rto = c.cfg.MinRTO
	c.stack.Accepted++
	if c.onAccept != nil {
		c.onAccept(c)
	}
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
	// The ACK may carry data.
	if len(p.Payload) > 0 || p.Flags.Has(packet.FlagFIN) {
		c.processData(p)
	}
	c.postInput()
}

// postInput runs transitions that depend on both ack and data processing.
func (c *Conn) postInput() {
	if c.state == StateClosed {
		return
	}
	ourFINAcked := c.finSent && c.sndUna == c.sndNxt
	switch c.state {
	case StateFinWait1:
		if ourFINAcked && c.peerFIN {
			c.enterTimeWait()
		} else if ourFINAcked {
			c.state = StateFinWait2
		} else if c.peerFIN {
			c.state = StateClosing
		}
	case StateFinWait2:
		if c.peerFIN {
			c.enterTimeWait()
		}
	case StateClosing:
		if ourFINAcked {
			c.enterTimeWait()
		}
	case StateLastAck:
		if ourFINAcked {
			c.fullClose()
		}
	case StateSynSent, StateSynRcvd, StateEstablished, StateCloseWait, StateTimeWait:
		// No close-side transition pending in these states.
	}
	c.trySend()
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.rtxTimer.Stop()
	c.persistTimer.Stop()
	c.twTimer.Reset(timeWaitDur)
}
