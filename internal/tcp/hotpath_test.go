package tcp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// TestTCPFastPathZeroAlloc pins every tcp kernel in the statically proven
// hot-path root set (internal/lint.DefaultHotpathRoots) at zero
// allocations per call. The allocfree analyzer proves the same property
// interprocedurally at compile time; this test is the dynamic
// cross-check, exercised on a connection that really carried data so the
// RTT estimator and SACK scoreboard are in their steady-state shapes.
func TestTCPFastPathZeroAlloc(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 7)
	got := 0
	h.server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got += len(b) }
	})
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send(make([]byte, 64<<10)) }
	h.eng.Run(time.Second)
	if got != 64<<10 {
		t.Fatalf("transfer incomplete: delivered %d bytes", got)
	}
	if !c.hasRTT {
		t.Fatal("connection has no RTT sample; sampleRTT path untested")
	}

	// An ACK carrying a timestamp echo, as sampleRTT sees on every
	// acknowledgment once timestamps are negotiated. Built once, outside
	// the measured region, exactly like the real receive path reuses the
	// parsed packet.
	ack := packet.NewTCP(c.tuple.Reverse(), packet.FlagACK, c.rcvNxt, c.sndNxt, nil)
	ack.Opts.TS = &packet.Timestamp{Val: 1, Ecr: h.client.TSNow()}

	sb := &sackScoreboard{ranges: []packet.SACKBlock{
		{Start: 1000, End: 2000},
		{Start: 3000, End: 4000},
	}}

	kernels := []struct {
		name string
		fn   func()
	}{
		{"Conn.flight", func() { _ = c.flight() }},
		{"Conn.sendWindow", func() { _ = c.sendWindow() }},
		{"Conn.recvWindow", func() { _ = c.recvWindow() }},
		{"Conn.advertisedWindow", func() { _ = c.advertisedWindow() }},
		{"Conn.sampleRTT", func() { c.sampleRTT(c.sndNxt, ack) }},
		{"Conn.backoffRTO", func() { c.backoffRTO() }},
		{"sackScoreboard.isSacked", func() { _ = sb.isSacked(1500) }},
		{"sackScoreboard.sackedAbove", func() { _ = sb.sackedAbove(500) }},
		{"sackScoreboard.firstHole", func() { _, _ = sb.firstHole(500, 5000) }},
	}
	for _, k := range kernels {
		if n := testing.AllocsPerRun(200, k.fn); n != 0 {
			t.Errorf("%s: %.1f allocs/run, want 0", k.name, n)
		}
	}
}
