package tcp

import (
	"repro/internal/packet"
)

// recvWindow returns the free receive buffer in bytes. Applications in this
// simulator consume delivered data immediately (the OnData callback), so
// only out-of-order bytes occupy the buffer.
func (c *Conn) recvWindow() int {
	w := c.cfg.RecvBuf - c.oooBytes
	if w < 0 {
		return 0
	}
	return w
}

// processData handles the payload and FIN of an inbound segment, updating
// the reassembly queue and emitting an ACK.
func (c *Conn) processData(p *packet.Packet) {
	seq := p.Seq
	data := p.Payload
	fin := p.Flags.Has(packet.FlagFIN)
	end := packet.SeqAdd(seq, int64(len(data)))

	// Entirely old segment (retransmission already received): ACK again.
	if packet.SeqLEQ(end, c.rcvNxt) && !fin {
		c.sendAck()
		return
	}
	if fin && packet.SeqLT(packet.SeqAdd(end, 1), c.rcvNxt) {
		c.sendAck()
		return
	}

	// Trim the prefix we already have.
	if packet.SeqLT(seq, c.rcvNxt) {
		skip := int(packet.SeqDiff(seq, c.rcvNxt))
		if skip >= len(data) {
			data = nil
		} else {
			data = data[skip:]
		}
		seq = c.rcvNxt
	}

	if seq == c.rcvNxt {
		// In-order: deliver immediately.
		c.deliver(data, fin)
		c.drainOOO()
	} else {
		// Out of order: queue if it fits, advertise SACK.
		if len(data) > 0 && c.oooBytes+len(data) <= c.cfg.RecvBuf && len(c.ooo) < 1024 {
			c.insertOOO(oooSeg{seq: seq, data: append([]byte(nil), data...), fin: fin})
		} else if fin && len(data) == 0 {
			c.insertOOO(oooSeg{seq: seq, fin: fin})
		}
	}
	c.sendAck()
}

// deliver hands in-order bytes to the application and consumes a FIN.
func (c *Conn) deliver(data []byte, fin bool) {
	if len(data) > 0 {
		c.rcvNxt = packet.SeqAdd(c.rcvNxt, int64(len(data)))
		c.Stats.BytesRcvd += uint64(len(data))
		if c.OnData != nil {
			c.OnData(data)
		}
	}
	if fin && !c.peerFIN {
		c.rcvNxt = packet.SeqAdd(c.rcvNxt, 1)
		c.peerFIN = true
		if c.state == StateEstablished {
			c.state = StateCloseWait
		}
		if c.OnPeerFIN != nil {
			c.OnPeerFIN()
		}
	}
}

// insertOOO adds a segment to the out-of-order queue, keeping the queue
// sorted by sequence number and disjoint. Overlap with existing segments
// is trimmed from the new segment; an existing segment strictly inside the
// new one splits it into two pieces, each inserted recursively.
func (c *Conn) insertOOO(s oooSeg) {
	sEnd := packet.SeqAdd(s.seq, int64(len(s.data)))
	for i := range c.ooo {
		e := &c.ooo[i]
		eEnd := packet.SeqAdd(e.seq, int64(len(e.data)))
		if len(s.data) == 0 {
			// Zero-length FIN marker: only duplicate suppression applies.
			if s.seq == eEnd && e.fin {
				return
			}
			continue
		}
		if packet.SeqLEQ(eEnd, s.seq) || packet.SeqLEQ(sEnd, e.seq) {
			continue // disjoint
		}
		// Overlap: keep the pieces of s outside e.
		if packet.SeqLT(s.seq, e.seq) {
			n := int(packet.SeqDiff(s.seq, e.seq))
			c.insertOOO(oooSeg{seq: s.seq, data: s.data[:n]})
		}
		switch {
		case packet.SeqGT(sEnd, eEnd):
			off := int(packet.SeqDiff(s.seq, eEnd))
			c.insertOOO(oooSeg{seq: eEnd, data: s.data[off:], fin: s.fin})
		case s.fin && sEnd == eEnd:
			e.fin = true
		case s.fin && packet.SeqLT(sEnd, eEnd):
			// Peer claims FIN at sEnd yet previously sent data beyond it:
			// contradictory; ignore the FIN (a correct peer never does this).
		}
		return
	}
	// No overlap: insert sorted by seq.
	pos := len(c.ooo)
	for i, e := range c.ooo {
		if packet.SeqLT(s.seq, e.seq) {
			pos = i
			break
		}
	}
	c.ooo = append(c.ooo, oooSeg{})
	copy(c.ooo[pos+1:], c.ooo[pos:])
	c.ooo[pos] = s
	c.oooBytes += len(s.data)
	// Remember the most recent arrival for SACK block ordering.
	c.lastOOO = packet.SACKBlock{Start: s.seq, End: sEnd}
}

// drainOOO delivers any queued segments made in-order by rcvNxt advancing.
func (c *Conn) drainOOO() {
	for len(c.ooo) > 0 {
		s := c.ooo[0]
		sEnd := packet.SeqAdd(s.seq, int64(len(s.data)))
		if packet.SeqGT(s.seq, c.rcvNxt) {
			return
		}
		c.ooo = c.ooo[1:]
		c.oooBytes -= len(s.data)
		if packet.SeqLEQ(sEnd, c.rcvNxt) && !s.fin {
			continue // stale
		}
		if packet.SeqLT(s.seq, c.rcvNxt) {
			s.data = s.data[int(packet.SeqDiff(s.seq, c.rcvNxt)):]
		}
		c.deliver(s.data, s.fin)
	}
}

// sackAdvertisement builds up to 3 SACK blocks from the out-of-order queue,
// most recent arrival first (RFC 2018).
func (c *Conn) sackAdvertisement() []packet.SACKBlock {
	if len(c.ooo) == 0 {
		return nil
	}
	// Coalesce adjacent segments into blocks.
	var blocks []packet.SACKBlock
	for _, s := range c.ooo {
		sEnd := packet.SeqAdd(s.seq, int64(len(s.data)))
		if n := len(blocks); n > 0 && blocks[n-1].End == s.seq {
			blocks[n-1].End = sEnd
			continue
		}
		blocks = append(blocks, packet.SACKBlock{Start: s.seq, End: sEnd})
	}
	// Most recent block first.
	out := make([]packet.SACKBlock, 0, 3)
	for _, b := range blocks {
		if packet.SeqLEQ(b.Start, c.lastOOO.Start) && packet.SeqGEQ(b.End, c.lastOOO.Start) {
			out = append(out, b)
			break
		}
	}
	for _, b := range blocks {
		if len(out) >= 3 {
			break
		}
		if len(out) > 0 && b == out[0] {
			continue
		}
		out = append(out, b)
	}
	// Drop degenerate zero-length blocks (pure-FIN placeholders).
	final := out[:0]
	for _, b := range out {
		if b.Start != b.End {
			final = append(final, b)
		}
	}
	if len(final) == 0 {
		return nil
	}
	return final
}
