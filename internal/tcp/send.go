package tcp

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// obsRetransmit reports one retransmitted segment (nil-safe no-op when
// the stack is unobserved).
func (c *Conn) obsRetransmit(detail string, bytes int) {
	if r := c.stack.obs; r != nil {
		r.Emit(obs.Event{Kind: obs.KRetransmit, Sess: c.tuple, Detail: detail, Bytes: bytes})
		r.Metrics().Add(obs.MTCPRetransmits, 1)
	}
}

// obsRTO reports one retransmission-timeout firing.
func (c *Conn) obsRTO(detail string) {
	if r := c.stack.obs; r != nil {
		r.Emit(obs.Event{Kind: obs.KRTO, Sess: c.tuple, Detail: detail})
		r.Metrics().Add(obs.MTCPTimeouts, 1)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// flight returns bytes in flight (sent, unacknowledged).
func (c *Conn) flight() int { return int(packet.SeqDiff(c.sndUna, c.sndNxt)) }

// sendWindow is how many more bytes may enter the network now.
func (c *Conn) sendWindow() int {
	w := min(c.cwnd, c.peerWnd) - c.flight()
	if w < 0 {
		return 0
	}
	return w
}

// dataOptions builds the option set for a non-SYN segment.
func (c *Conn) dataOptions() packet.Options {
	o := packet.NoOptions()
	if c.tsOK {
		o.TS = &packet.Timestamp{Val: c.stack.tsNow(), Ecr: c.tsRecent}
	}
	if c.sackOK {
		o.SACK = c.sackAdvertisement()
	}
	return o
}

func (c *Conn) advertisedWindow() uint16 {
	w := c.recvWindow() >> c.rcvWScale
	if w > 65535 {
		w = 65535
	}
	return uint16(w)
}

// emit sends a segment with the standard options/window and counts it.
func (c *Conn) emit(flags packet.TCPFlags, seq uint32, payload []byte) {
	p := packet.NewTCP(c.tuple, flags, seq, c.rcvNxt, payload)
	p.Opts = c.dataOptions()
	p.Window = c.advertisedWindow()
	c.Stats.SegsSent++
	c.stack.Host.Send(p)
}

func (c *Conn) sendAck() {
	c.emit(packet.FlagACK, c.sndNxt, nil)
}

// trySend pushes as much new data (and finally FIN) as windows allow.
func (c *Conn) trySend() {
	switch c.state {
	case StateEstablished, StateCloseWait, StateFinWait1, StateLastAck, StateClosing:
		// States with an open or draining send side.
	case StateClosed, StateSynSent, StateSynRcvd, StateFinWait2, StateTimeWait:
		return
	default:
		panic(fmt.Sprintf("tcp: trySend in unknown state %v", c.state))
	}
	sent := false
	for {
		unsentOff := c.flight() // index of first unsent byte in sndBuf
		unsent := len(c.sndBuf) - unsentOff
		if unsent > 0 {
			n := min(min(unsent, c.mss), c.sendWindow())
			if n <= 0 {
				break
			}
			if n < c.mss && !c.cfg.NoDelay && c.flight() > 0 {
				// Nagle: sub-MSS data waits while anything is outstanding,
				// coalescing into fuller segments on the next ACK.
				break
			}
			payload := append([]byte(nil), c.sndBuf[unsentOff:unsentOff+n]...)
			flags := packet.FlagACK
			if n == unsent {
				flags |= packet.FlagPSH
			}
			seq := c.sndNxt
			c.armRTTSample(seq, n)
			c.sndNxt = packet.SeqAdd(c.sndNxt, int64(n))
			c.Stats.BytesSent += uint64(n)
			c.emit(flags, seq, payload)
			sent = true
			continue
		}
		// All data sent: maybe FIN.
		if c.finQueued && !c.finSent {
			c.finSent = true
			seq := c.sndNxt
			c.sndNxt = packet.SeqAdd(c.sndNxt, 1)
			c.emit(packet.FlagFIN|packet.FlagACK, seq, nil)
			sent = true
			if c.state == StateEstablished {
				c.state = StateFinWait1
			} else if c.state == StateCloseWait {
				c.state = StateLastAck
			}
		}
		break
	}
	if c.flight() > 0 {
		if sent || !c.rtxTimer.Armed() {
			c.rtxTimer.Reset(c.rto)
		}
		c.persistTimer.Stop()
	} else if len(c.sndBuf) > 0 && c.peerWnd == 0 {
		// Zero-window: arm the persist timer to probe.
		if !c.persistTimer.Armed() {
			c.persistTimer.Reset(c.rto)
		}
	}
}

// armRTTSample starts a non-timestamp RTT measurement on this segment if
// none is outstanding (Karn's algorithm: samples void on retransmission).
func (c *Conn) armRTTSample(seq uint32, n int) {
	if c.rttArmed || c.tsOK {
		return
	}
	c.rttArmed = true
	c.rttClean = true
	c.rttSeq = packet.SeqAdd(seq, int64(n))
	c.rttAt = c.eng.Now()
}

// processAck handles the ACK field of an inbound segment.
func (c *Conn) processAck(p *packet.Packet) {
	ack := p.Ack
	if packet.SeqGT(ack, c.sndNxt) {
		// Acks something never sent; ignore (the peer of a reconfigured
		// session never does this once deltas are applied).
		return
	}
	// Window update (scaled except on SYN, which never reaches here).
	c.peerWnd = int(p.Window) << c.sndWScale
	if c.peerWnd > 0 {
		c.persistTimer.Stop()
	}

	if c.sackOK && len(p.Opts.SACK) > 0 {
		c.scoreboard.merge(p.Opts.SACK, c.sndUna)
	}

	switch {
	case packet.SeqGT(ack, c.sndUna):
		c.ackAdvance(ack, p)
	case ack == c.sndUna && c.flight() > 0 && len(p.Payload) == 0 && !p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagFIN):
		c.Stats.DupAcksRcvd++
		c.dupAcks++
		if c.inRecovery {
			// Each dup ACK signals a segment left the network: conservation
			// admits one hole retransmission (the cursor guarantees each
			// hole is sent at most once per episode) plus cwnd inflation
			// for new data (RFC 6675 flavour).
			c.cwnd += c.mss
			c.retransmitHole()
			c.trySend()
		} else if c.dupAcks == 3 {
			c.enterFastRecovery()
		}
	}
}

func (c *Conn) ackAdvance(ack uint32, p *packet.Packet) {
	acked := int(packet.SeqDiff(c.sndUna, ack))
	// FIN occupies sequence space but not buffer space.
	bufAcked := acked
	if c.finSent && ack == c.sndNxt {
		bufAcked--
	}
	if bufAcked > len(c.sndBuf) {
		bufAcked = len(c.sndBuf)
	}
	c.sndBuf = c.sndBuf[bufAcked:]
	c.sndUna = ack
	c.dupAcks = 0
	c.scoreboard.trim(c.sndUna)
	c.sampleRTT(ack, p)

	if c.inRecovery {
		if packet.SeqGEQ(ack, c.recoverPt) {
			// Full acknowledgment: leave recovery, deflate.
			c.inRecovery = false
			c.lossMode = false
			c.cwnd = c.ssthresh
		} else if c.lossMode {
			// RTO recovery (CA_Loss): slow-start the window back up and
			// let every acknowledged byte clock out further
			// retransmissions of the lost window.
			c.cwnd += min(acked, c.mss)
			budget := acked
			for budget > 0 {
				n := c.retransmitHole()
				if n <= 0 {
					break
				}
				budget -= n
			}
		} else {
			// Partial ACK in fast recovery: retransmit the next hole.
			c.retransmitHole()
		}
	} else if c.flight()+acked >= c.cwnd-c.mss {
		// Congestion avoidance / slow start — but only when the window was
		// actually limiting (RFC 2861 congestion-window validation keeps
		// app-limited flows from inflating cwnd without evidence).
		if c.cwnd < c.ssthresh {
			c.cwnd += min(acked, c.mss)
		} else {
			c.cwnd += max(1, c.mss*c.mss/c.cwnd)
		}
	}

	if c.flight() > 0 {
		c.rtxTimer.Reset(c.rto)
	} else {
		c.rtxTimer.Stop()
	}
	if c.OnSendBufferLow != nil && len(c.sndBuf) < 128<<10 {
		c.OnSendBufferLow()
	}
}

func (c *Conn) sampleRTT(ack uint32, p *packet.Packet) {
	var rtt sim.Time
	have := false
	if c.tsOK && p.Opts.TS != nil && p.Opts.TS.Ecr != 0 {
		nowMS := c.stack.tsNow()
		if d := packet.SeqDiff(p.Opts.TS.Ecr, nowMS); d >= 0 {
			rtt = sim.Time(d) * 1e6 // ms → Duration
			have = true
		}
	} else if c.rttArmed && c.rttClean && packet.SeqGEQ(ack, c.rttSeq) {
		rtt = c.eng.Now() - c.rttAt
		c.rttArmed = false
		have = true
	}
	if !have {
		return
	}
	if !c.hasRTT {
		c.srtt = rtt
		c.rttvar = rtt / 2
		c.hasRTT = true
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
}

// SRTT returns the smoothed RTT estimate (0 until measured).
func (c *Conn) SRTT() sim.Time { return c.srtt }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() sim.Time { return c.rto }

func (c *Conn) enterFastRecovery() {
	c.Stats.FastRetransmits++
	c.ssthresh = max(c.flight()/2, 2*c.mss)
	c.cwnd = c.ssthresh + 3*c.mss
	c.inRecovery = true
	c.recoverPt = c.sndNxt
	c.rtxCursor = c.sndUna
	c.retransmitHole()
}

// retransmitHole retransmits the first unsacked range at/after the
// retransmission cursor, advancing the cursor so each hole is resent at
// most once per recovery episode (without the cursor every dup ACK would
// resend the same segment — a retransmission storm). A hole beyond sndUna
// is retransmitted only once it is deemed lost per the RFC 6675
// heuristic: at least 3 MSS of SACKed data above it (otherwise it is
// probably just in flight).
func (c *Conn) retransmitHole() int {
	if packet.SeqLT(c.rtxCursor, c.sndUna) {
		c.rtxCursor = c.sndUna
	}
	start, okLen := c.scoreboard.firstHole(c.rtxCursor, c.sndNxt)
	if okLen <= 0 {
		return 0
	}
	if c.lossMode {
		// After an RTO everything unsacked below recoverPt is lost.
		if packet.SeqGEQ(start, c.recoverPt) {
			return 0
		}
	} else if start != c.sndUna && c.scoreboard.sackedAbove(start) < 3*c.mss {
		return 0
	}
	n := min(okLen, c.mss)
	c.retransmitRange(start, n)
	c.rtxCursor = packet.SeqAdd(start, int64(n))
	return n
}

// retransmitRange resends [seq, seq+n) from the buffer (or the FIN). Only
// data already transmitted — below sndNxt — may be resent.
func (c *Conn) retransmitRange(seq uint32, n int) {
	off := int(packet.SeqDiff(c.sndUna, seq))
	if off < 0 {
		return
	}
	c.rttClean = false // Karn: void timing sample
	if off >= len(c.sndBuf) {
		// Beyond data: must be the FIN.
		if c.finSent {
			c.Stats.Retransmits++
			c.obsRetransmit("fin", 0)
			c.emit(packet.FlagFIN|packet.FlagACK, seq, nil)
		}
		return
	}
	sent := int(packet.SeqDiff(seq, c.sndNxt)) // bytes of sequence space sent from seq
	if c.finSent && sent > 0 {
		sent-- // the FIN occupies the last unit
	}
	if n > sent {
		n = sent
	}
	if n <= 0 {
		return
	}
	if off+n > len(c.sndBuf) {
		n = len(c.sndBuf) - off
	}
	payload := append([]byte(nil), c.sndBuf[off:off+n]...)
	c.Stats.Retransmits++
	c.obsRetransmit("data", n)
	flags := packet.FlagACK
	if c.finSent && off+n == len(c.sndBuf) {
		// The FIN directly follows this data: retransmit it together.
		flags |= packet.FlagFIN
	}
	c.emit(flags, seq, payload)
}

func (c *Conn) onRetransmitTimeout() {
	switch c.state {
	case StateSynSent:
		c.Stats.Timeouts++
		c.obsRTO("syn-sent")
		c.sndNxt = c.iss
		c.sendSYN(false)
		c.backoffRTO()
		c.rtxTimer.Reset(c.rto)
		return
	case StateSynRcvd:
		c.Stats.Timeouts++
		c.obsRTO("syn-rcvd")
		c.sndNxt = c.iss
		c.sendSYN(true)
		c.backoffRTO()
		c.rtxTimer.Reset(c.rto)
		return
	case StateClosed, StateTimeWait:
		return
	case StateEstablished, StateFinWait1, StateFinWait2, StateCloseWait, StateClosing, StateLastAck:
		// Data/FIN retransmission below.
	}
	if c.flight() == 0 {
		return
	}
	c.Stats.Timeouts++
	c.obsRTO("data")
	c.ssthresh = max(c.flight()/2, 2*c.mss)
	c.cwnd = c.mss
	// Enter RTO-driven loss recovery (CA_Loss): returning ACKs clock out
	// retransmission of the whole lost window. SACK information is kept
	// so already-received ranges are not resent.
	c.inRecovery = true
	c.lossMode = true
	c.recoverPt = c.sndNxt
	c.dupAcks = 0
	c.rtxCursor = c.sndUna
	c.retransmitRange(c.sndUna, c.mss)
	c.backoffRTO()
	c.rtxTimer.Reset(c.rto)
}

func (c *Conn) backoffRTO() {
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
}

func (c *Conn) onPersistTimeout() {
	if c.peerWnd > 0 || len(c.sndBuf) == 0 {
		return
	}
	// Send a 1-byte window probe: the next unsent byte, beyond the
	// advertised window. It occupies sequence space so the probe's ACK
	// (carrying the reopened window) is processed normally.
	off := c.flight()
	if off < len(c.sndBuf) {
		payload := []byte{c.sndBuf[off]}
		seq := c.sndNxt
		c.sndNxt = packet.SeqAdd(c.sndNxt, 1)
		c.Stats.BytesSent++
		c.emit(packet.FlagACK, seq, payload)
		c.rtxTimer.Reset(c.rto)
	}
	c.persistTimer.Reset(c.rto)
}

// sackScoreboard tracks ranges the peer has selectively acknowledged.
type sackScoreboard struct {
	ranges []packet.SACKBlock // sorted, disjoint
}

func (sb *sackScoreboard) clear() { sb.ranges = sb.ranges[:0] }

// merge folds advertised blocks into the scoreboard, ignoring stale ones
// below una.
func (sb *sackScoreboard) merge(blocks []packet.SACKBlock, una uint32) {
	for _, b := range blocks {
		if packet.SeqLEQ(b.End, una) {
			continue
		}
		if packet.SeqLT(b.Start, una) {
			b.Start = una
		}
		sb.insert(b)
	}
}

func (sb *sackScoreboard) insert(b packet.SACKBlock) {
	out := sb.ranges[:0]
	merged := b
	for _, r := range sb.ranges {
		if packet.SeqLT(r.End, merged.Start) || packet.SeqLT(merged.End, r.Start) {
			out = append(out, r)
		} else {
			merged.Start = packet.SeqMin(merged.Start, r.Start)
			merged.End = packet.SeqMax(merged.End, r.End)
		}
	}
	// Insert keeping sort order.
	pos := len(out)
	for i, r := range out {
		if packet.SeqLT(merged.Start, r.Start) {
			pos = i
			break
		}
	}
	out = append(out, packet.SACKBlock{})
	copy(out[pos+1:], out[pos:])
	out[pos] = merged
	sb.ranges = out
}

// trim drops sacked ranges at/below una.
func (sb *sackScoreboard) trim(una uint32) {
	out := sb.ranges[:0]
	for _, r := range sb.ranges {
		if packet.SeqGT(r.End, una) {
			if packet.SeqLT(r.Start, una) {
				r.Start = una
			}
			out = append(out, r)
		}
	}
	sb.ranges = out
}

// isSacked reports whether seq is covered by a sacked range.
func (sb *sackScoreboard) isSacked(seq uint32) bool {
	for _, r := range sb.ranges {
		if packet.SeqGEQ(seq, r.Start) && packet.SeqLT(seq, r.End) {
			return true
		}
	}
	return false
}

// sackedAbove returns the number of sacked bytes at or above seq.
func (sb *sackScoreboard) sackedAbove(seq uint32) int {
	total := 0
	for _, r := range sb.ranges {
		if packet.SeqGEQ(r.Start, seq) {
			total += int(packet.SeqDiff(r.Start, r.End))
		} else if packet.SeqGT(r.End, seq) {
			total += int(packet.SeqDiff(seq, r.End))
		}
	}
	return total
}

// firstHole returns the first unsacked position in [una, nxt) and the hole
// length, or (0, 0) if fully covered.
func (sb *sackScoreboard) firstHole(una, nxt uint32) (uint32, int) {
	cur := una
	for _, r := range sb.ranges {
		if packet.SeqGT(r.Start, cur) {
			return cur, int(packet.SeqDiff(cur, packet.SeqMin(r.Start, nxt)))
		}
		if packet.SeqGT(r.End, cur) {
			cur = r.End
		}
	}
	if packet.SeqLT(cur, nxt) {
		return cur, int(packet.SeqDiff(cur, nxt))
	}
	return 0, 0
}
