package tcp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// harness wires two hosts with TCP stacks over a configurable link.
type harness struct {
	eng      *sim.Engine
	net      *netsim.Network
	hc, hs   *netsim.Host
	client   *Stack
	server   *Stack
	accepted []*Conn
}

// runFor advances the engine by a relative duration.
func (h *harness) runFor(d sim.Time) { h.eng.Run(h.eng.Now() + d) }

func newHarness(t *testing.T, cfg netsim.LinkConfig, seed int64) *harness {
	t.Helper()
	eng := sim.NewEngine(seed)
	n := netsim.New(eng)
	hc := n.AddHost("client", packet.MakeAddr(10, 0, 0, 1))
	hs := n.AddHost("server", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(hc, hs, cfg)
	n.ComputeRoutes()
	h := &harness{eng: eng, net: n, hc: hc, hs: hs}
	h.client = NewStack(hc)
	h.server = NewStack(hs)
	return h
}

// echoServer listens and records received bytes; optionally echoes.
func (h *harness) sinkServer(t *testing.T, port packet.Port) *bytes.Buffer {
	t.Helper()
	buf := &bytes.Buffer{}
	h.server.Listen(port, func(c *Conn) {
		h.accepted = append(h.accepted, c)
		c.OnData = func(b []byte) { buf.Write(b) }
	})
	return buf
}

func TestHandshake(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	established := false
	var serverSide *Conn
	h.server.Listen(80, func(c *Conn) { serverSide = c })
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { established = true }
	h.eng.Run(time.Second)
	if !established {
		t.Fatal("client not established")
	}
	if serverSide == nil || serverSide.State() != StateEstablished {
		t.Fatalf("server side state: %v", serverSide)
	}
	if c.State() != StateEstablished {
		t.Fatalf("client state %v", c.State())
	}
	if !c.SACKEnabled() || !serverSide.SACKEnabled() {
		t.Error("SACK not negotiated by default")
	}
	if c.MSS() != 1460 {
		t.Errorf("MSS = %d", c.MSS())
	}
}

func TestConnectLatencyIsOneRTT(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: 500 * time.Microsecond}, 1)
	h.server.Listen(80, func(c *Conn) {})
	var at sim.Time
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { at = h.eng.Now() }
	h.eng.Run(time.Second)
	// connect() completes after SYN + SYN-ACK = 1 RTT (plus CPU µs).
	if at < time.Millisecond || at > time.Millisecond+100*time.Microsecond {
		t.Errorf("established at %v, want ≈1ms", at)
	}
}

func TestBulkTransfer(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond, Bandwidth: netsim.Gbps(1)}, 1)
	got := h.sinkServer(t, 80)
	data := make([]byte, 1<<20) // 1 MB
	for i := range data {
		data[i] = byte(i * 7)
	}
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send(data) }
	h.eng.Run(10 * time.Second)
	if got.Len() != len(data) {
		t.Fatalf("received %d bytes, want %d", got.Len(), len(data))
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("data corrupted in transfer")
	}
	if c.Stats.Retransmits != 0 {
		t.Errorf("unexpected retransmits on clean link: %d", c.Stats.Retransmits)
	}
}

func TestBulkTransferWithLoss(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond, Bandwidth: netsim.Gbps(1), LossProb: 0.02}, 7)
	got := h.sinkServer(t, 80)
	data := make([]byte, 512<<10)
	for i := range data {
		data[i] = byte(i)
	}
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send(data) }
	h.eng.Run(120 * time.Second)
	if got.Len() != len(data) {
		t.Fatalf("received %d bytes, want %d (retx=%d timeouts=%d)",
			got.Len(), len(data), c.Stats.Retransmits, c.Stats.Timeouts)
	}
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("data corrupted under loss")
	}
	if c.Stats.Retransmits == 0 {
		t.Error("no retransmits despite 2% loss")
	}
}

func TestLossRecoveryUsesFastRetransmit(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: 5 * time.Millisecond, Bandwidth: netsim.Gbps(1), LossProb: 0.01}, 3)
	h.sinkServer(t, 80)
	data := make([]byte, 1<<20)
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send(data) }
	h.eng.Run(120 * time.Second)
	if c.Stats.FastRetransmits == 0 {
		t.Errorf("no fast retransmits (timeouts=%d, retx=%d)", c.Stats.Timeouts, c.Stats.Retransmits)
	}
}

func TestSACKDisabledFallsBackToTimeouts(t *testing.T) {
	// With SACK on, multiple losses in a window recover without RTO much
	// more often; compare timeout counts as a smoke signal.
	run := func(sack bool, seed int64) uint64 {
		h := newHarness(t, netsim.LinkConfig{Delay: 5 * time.Millisecond, Bandwidth: netsim.Mbps(100), LossProb: 0.03}, seed)
		h.server.Listen(80, func(c *Conn) {})
		cfg := Config{DisableSACK: !sack}
		data := make([]byte, 256<<10)
		c := h.client.Connect(h.hs.Addr, 80, cfg)
		c.OnEstablished = func() { c.Send(data) }
		h.eng.Run(240 * time.Second)
		return c.Stats.Timeouts
	}
	var withSACK, without uint64
	for seed := int64(1); seed <= 3; seed++ {
		withSACK += run(true, seed)
		without += run(false, seed)
	}
	if without < withSACK {
		t.Logf("timeouts with SACK=%d without=%d (informational)", withSACK, without)
	}
}

func TestCloseHandshake(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	var serverConn *Conn
	serverSawFIN := false
	h.server.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnPeerFIN = func() {
			serverSawFIN = true
			c.Close() // close our side too
		}
	})
	clientClosed := false
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() {
		c.Send([]byte("bye"))
		c.Close()
	}
	c.OnClosed = func() { clientClosed = true }
	h.eng.Run(30 * time.Second)
	if !serverSawFIN {
		t.Fatal("server did not see FIN")
	}
	if serverConn.State() != StateClosed {
		t.Errorf("server state %v, want CLOSED", serverConn.State())
	}
	if !clientClosed {
		t.Errorf("client not fully closed: %v", c.State())
	}
	if h.client.Conns() != 0 || h.server.Conns() != 0 {
		t.Errorf("lingering conns: client=%d server=%d", h.client.Conns(), h.server.Conns())
	}
}

func TestOneWayCloseStillReceives(t *testing.T) {
	// Paper §2.1: one end can FIN and then keep receiving ("flexible
	// session teardown in each direction").
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	response := make([]byte, 100<<10)
	h.server.Listen(80, func(s *Conn) {
		s.OnPeerFIN = func() {
			s.Send(response)
			s.Close()
		}
	})
	var got bytes.Buffer
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnData = func(b []byte) { got.Write(b) }
	c.OnEstablished = func() {
		c.Send([]byte("request"))
		c.Close() // half-close: send nothing more
	}
	h.eng.Run(30 * time.Second)
	if got.Len() != len(response) {
		t.Fatalf("received %d of %d response bytes after half-close", got.Len(), len(response))
	}
}

func TestRSTOnConnectToClosedPort(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	reset := false
	c := h.client.Connect(h.hs.Addr, 4444, Config{})
	c.OnReset = func() { reset = true }
	h.eng.Run(time.Second)
	if !reset {
		t.Error("no RST for closed port")
	}
	if h.client.Conns() != 0 {
		t.Error("connection lingers after RST")
	}
}

func TestAbortSendsRST(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	var serverConn *Conn
	reset := false
	h.server.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnReset = func() { reset = true }
	})
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Abort() }
	h.eng.Run(time.Second)
	if !reset {
		t.Error("peer did not observe RST")
	}
	_ = serverConn
}

func TestSYNRetransmission(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 1.0}, 1)
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	h.eng.Run(5 * time.Second)
	if c.Stats.Timeouts < 2 {
		t.Errorf("SYN timeouts = %d, want ≥2 on black-holed link", c.Stats.Timeouts)
	}
}

func TestReorderingToleratedViaOOOQueue(t *testing.T) {
	// Two paths with very different delays cause reordering; all data must
	// still arrive intact (this is the Figure 14 stress in miniature).
	eng := sim.NewEngine(5)
	n := netsim.New(eng)
	hc := n.AddHost("c", packet.MakeAddr(10, 0, 0, 1))
	hs := n.AddHost("s", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(hc, hs, netsim.LinkConfig{Delay: 2 * time.Millisecond, Bandwidth: netsim.Mbps(50)})
	n.ComputeRoutes()
	client := NewStack(hc)
	server := NewStack(hs)
	var got bytes.Buffer
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got.Write(b) }
	})
	data := make([]byte, 300<<10)
	for i := range data {
		data[i] = byte(i >> 3)
	}
	c := client.Connect(hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send(data) }
	eng.Run(60 * time.Second)
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("reordered transfer corrupt: got %d bytes", got.Len())
	}
}

func TestCwndGrowsDuringSlowStart(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: 10 * time.Millisecond, Bandwidth: netsim.Gbps(1)}, 1)
	h.sinkServer(t, 80)
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	initial := 0
	c.OnEstablished = func() {
		initial = c.Cwnd()
		c.Send(make([]byte, 1<<20))
	}
	h.eng.Run(2 * time.Second)
	if initial == 0 || c.Cwnd() <= initial {
		t.Errorf("cwnd did not grow: initial=%d now=%d", initial, c.Cwnd())
	}
}

func TestPAWSDropsStaleTimestamps(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	var sc *Conn
	h.server.Listen(80, func(c *Conn) { sc = c })
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send([]byte("x")) }
	h.eng.Run(time.Second)
	if sc == nil {
		t.Fatal("not established")
	}
	// Inject a segment whose timestamp is far in the past.
	p := packet.NewTCP(c.Tuple(), packet.FlagACK, c.SndNxt(), sc.SndNxt(), []byte("stale"))
	p.Opts.TS = &packet.Timestamp{Val: c.TSNow() - 100000, Ecr: 0} // far in the client's past
	h.runFor(2 * time.Second)                                      // advance the clock so tsRecent-0 > 1000 ms
	c2 := packet.NewTCP(c.Tuple(), packet.FlagACK, c.SndNxt(), sc.SndNxt(), nil)
	c2.Opts.TS = &packet.Timestamp{Val: c.TSNow(), Ecr: 0} // client's clock
	h.hs.InjectLocal(c2)                                   // fresh timestamp: raises tsRecent
	h.runFor(100 * time.Millisecond)
	before := sc.Stats.PAWSDrops
	h.hs.InjectLocal(p)
	h.runFor(100 * time.Millisecond)
	if sc.Stats.PAWSDrops != before+1 {
		t.Errorf("PAWSDrops = %d, want %d", sc.Stats.PAWSDrops, before+1)
	}
}

func TestInvalidSACKBlocksDropPacket(t *testing.T) {
	// §4.2: untranslated SACK blocks are invalid for the session and the
	// receiver must discard the packet.
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	h.sinkServer(t, 80)
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send(make([]byte, 10000)) }
	h.eng.Run(time.Second)
	before := c.Stats.BadSACKDrops
	bogus := packet.NewTCP(c.Tuple().Reverse(), packet.FlagACK, 0, c.SndUna(), nil)
	bogus.Opts.SACK = []packet.SACKBlock{{Start: c.SndNxt() + 5000, End: c.SndNxt() + 6000}}
	bogus.Opts.TS = &packet.Timestamp{Val: h.accepted[0].TSNow()} // server's clock
	h.hc.InjectLocal(bogus)
	h.runFor(100 * time.Millisecond)
	if c.Stats.BadSACKDrops != before+1 {
		t.Errorf("BadSACKDrops = %d, want %d", c.Stats.BadSACKDrops, before+1)
	}
}

func TestManyParallelConnections(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond, Bandwidth: netsim.Gbps(10)}, 1)
	total := 0
	h.server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { total += len(b) }
	})
	const conns = 50
	const per = 64 << 10
	for i := 0; i < conns; i++ {
		c := h.client.Connect(h.hs.Addr, 80, Config{})
		cc := c
		c.OnEstablished = func() { cc.Send(make([]byte, per)) }
	}
	h.eng.Run(30 * time.Second)
	if total != conns*per {
		t.Fatalf("total received %d, want %d", total, conns*per)
	}
}

func TestZeroWindowPersist(t *testing.T) {
	// Peer advertises zero window (via an injected ACK); sender must not
	// deadlock and must resume when the window reopens.
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	var sc *Conn
	got := 0
	h.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnData = func(b []byte) { got += len(b) }
	})
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	h.eng.Run(time.Second)
	// Force the client to believe the window is zero.
	zw := packet.NewTCP(c.Tuple().Reverse(), packet.FlagACK, sc.SndNxt(), c.SndNxt(), nil)
	zw.Window = 0
	zw.Opts.TS = &packet.Timestamp{Val: sc.TSNow()} // server's clock
	h.hc.InjectLocal(zw)
	h.runFor(10 * time.Millisecond)
	c.Send(make([]byte, 5000))
	h.runFor(100 * time.Millisecond)
	if got != 0 {
		t.Fatalf("data sent despite zero window: %d", got)
	}
	// Window probe + real ACKs from the server reopen the window.
	h.runFor(10 * time.Second)
	if got != 5000 {
		t.Fatalf("transfer did not resume after zero window: got %d", got)
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{}, 1)
	h.server.Listen(80, func(c *Conn) {})
	seen := map[packet.Port]bool{}
	for i := 0; i < 100; i++ {
		c := h.client.Connect(h.hs.Addr, 80, Config{})
		if seen[c.Tuple().SrcPort] {
			t.Fatalf("duplicate ephemeral port %d", c.Tuple().SrcPort)
		}
		seen[c.Tuple().SrcPort] = true
	}
}

func TestScoreboard(t *testing.T) {
	var sb sackScoreboard
	sb.merge([]packet.SACKBlock{{Start: 100, End: 200}, {Start: 300, End: 400}}, 50)
	if start, n := sb.firstHole(50, 400); start != 50 || n != 50 {
		t.Errorf("firstHole = %d,%d want 50,50", start, n)
	}
	sb.merge([]packet.SACKBlock{{Start: 50, End: 100}}, 50)
	if start, n := sb.firstHole(50, 400); start != 200 || n != 100 {
		t.Errorf("firstHole after fill = %d,%d want 200,100", start, n)
	}
	sb.trim(250)
	if sb.isSacked(240) {
		t.Error("range below una not trimmed")
	}
	if !sb.isSacked(350) {
		t.Error("lost a valid sacked range")
	}
	// Fully covered: no hole.
	sb.merge([]packet.SACKBlock{{Start: 250, End: 300}}, 250)
	if _, n := sb.firstHole(250, 400); n != 0 {
		t.Errorf("expected no hole, got len %d", n)
	}
}

func TestScoreboardMergeAdjacent(t *testing.T) {
	var sb sackScoreboard
	sb.merge([]packet.SACKBlock{{Start: 100, End: 200}}, 0)
	sb.merge([]packet.SACKBlock{{Start: 200, End: 300}}, 0)
	sb.merge([]packet.SACKBlock{{Start: 150, End: 250}}, 0)
	if len(sb.ranges) != 1 || sb.ranges[0] != (packet.SACKBlock{Start: 100, End: 300}) {
		t.Errorf("ranges = %v, want single [100,300)", sb.ranges)
	}
}

func TestStatsCounters(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	h.sinkServer(t, 80)
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Send(make([]byte, 10000)) }
	h.eng.Run(5 * time.Second)
	if c.Stats.BytesSent != 10000 {
		t.Errorf("BytesSent = %d", c.Stats.BytesSent)
	}
	if h.accepted[0].Stats.BytesRcvd != 10000 {
		t.Errorf("BytesRcvd = %d", h.accepted[0].Stats.BytesRcvd)
	}
	if h.server.Accepted != 1 || h.client.Connected != 1 {
		t.Errorf("stack counters: %d/%d", h.server.Accepted, h.client.Connected)
	}
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: 5 * time.Millisecond}, 9)
	var sc *Conn
	h.server.Listen(80, func(c *Conn) { sc = c })
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	h.eng.Run(time.Second)
	segsBefore := c.Stats.SegsSent
	// 100 tiny writes in one instant: Nagle must coalesce all but the
	// first into few segments.
	for i := 0; i < 100; i++ {
		c.Send(make([]byte, 10))
	}
	h.runFor(time.Second)
	segs := c.Stats.SegsSent - segsBefore
	if sc.Stats.BytesRcvd != 1000 {
		t.Fatalf("received %d bytes", sc.Stats.BytesRcvd)
	}
	if segs > 5 {
		t.Errorf("Nagle off? %d segments for 100 tiny writes", segs)
	}
	// With NoDelay, each write goes out immediately.
	c2 := h.client.Connect(h.hs.Addr, 80, Config{NoDelay: true})
	h.runFor(time.Second)
	before2 := c2.Stats.SegsSent
	for i := 0; i < 20; i++ {
		c2.Send(make([]byte, 10))
	}
	h.runFor(100 * time.Millisecond)
	if got := c2.Stats.SegsSent - before2; got < 15 {
		t.Errorf("NoDelay coalesced: only %d segments for 20 writes", got)
	}
}

func TestTimeWaitReapsState(t *testing.T) {
	h := newHarness(t, netsim.LinkConfig{Delay: time.Millisecond}, 11)
	h.server.Listen(80, func(c *Conn) {
		c.OnPeerFIN = func() { c.Close() }
	})
	c := h.client.Connect(h.hs.Addr, 80, Config{})
	c.OnEstablished = func() { c.Close() }
	h.eng.Run(30 * time.Second)
	if h.client.Conns() != 0 || h.server.Conns() != 0 {
		t.Fatalf("TIME-WAIT never reaped: client=%d server=%d", h.client.Conns(), h.server.Conns())
	}
}
