// Package tcp is a userspace TCP implementation running over the netsim
// substrate. It provides what the paper's unmodified Linux host stacks
// provide underneath Dysco: the three-way handshake, cumulative
// acknowledgments, Reno congestion control with fast retransmit and RTO,
// selective acknowledgments (with the Linux behaviour of discarding
// packets whose SACK blocks carry invalid sequence numbers), timestamps
// (with PAWS-style rejection of stale values), window scaling, and
// per-direction FIN teardown.
//
// Dysco agents operate entirely below this package, rewriting packets at
// the host boundary; nothing in this package knows Dysco exists.
package tcp

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Config carries per-connection TCP parameters.
type Config struct {
	// MSS is the maximum segment size offered (default 1460).
	MSS int
	// DisableSACK turns off offering selective acknowledgments (on by
	// default).
	DisableSACK bool
	// DisableTimestamps turns off the timestamp option (on by default).
	DisableTimestamps bool
	// WScale is the window-scale shift offered; 0 means the default of 7,
	// NoWScale disables window scaling.
	WScale int8
	// RecvBuf is the receive buffer in bytes (default 4 MB), which bounds
	// the advertised window.
	RecvBuf int
	// MinRTO/MaxRTO bound the retransmission timeout (defaults 200 ms / 60 s,
	// the Linux values).
	MinRTO sim.Time
	MaxRTO sim.Time
	// InitialCwndSegs is the initial congestion window in segments
	// (default 10, RFC 6928).
	InitialCwndSegs int
	// NoDelay disables Nagle's algorithm (which coalesces sub-MSS writes
	// while data is in flight, as Linux does by default).
	NoDelay bool
}

// NoWScale disables window scaling when set as Config.WScale.
const NoWScale int8 = -1

// DefaultConfig returns the default TCP parameters.
func DefaultConfig() Config {
	return Config{
		MSS:             1460,
		WScale:          7,
		RecvBuf:         4 << 20,
		MinRTO:          200 * time.Millisecond,
		MaxRTO:          60 * time.Second,
		InitialCwndSegs: 10,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.MSS == 0 {
		c.MSS = d.MSS
	}
	if c.WScale == 0 {
		c.WScale = d.WScale
	} else if c.WScale == NoWScale {
		c.WScale = -1
	}
	if c.RecvBuf == 0 {
		c.RecvBuf = d.RecvBuf
	}
	if c.MinRTO == 0 {
		c.MinRTO = d.MinRTO
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = d.MaxRTO
	}
	if c.InitialCwndSegs == 0 {
		c.InitialCwndSegs = d.InitialCwndSegs
	}
}

// Stack is the per-host TCP instance. It registers itself as the host's
// TCP demultiplexer.
type Stack struct {
	Host *netsim.Host
	eng  *sim.Engine

	listeners map[packet.Port]func(*Conn)
	conns     map[packet.FiveTuple]*Conn // keyed by local tuple (Src=local)
	nextPort  packet.Port

	// tsOffset randomizes the timestamp clock per stack, as real hosts'
	// TS clocks are unsynchronized; Dysco's timestamp translation across
	// spliced sessions is meaningless without it.
	tsOffset uint32

	// Stats
	Accepted  uint64
	Connected uint64
	RSTsSent  uint64

	// obs receives retransmission/RTO events for every connection on this
	// stack (nil = observability off; emissions are then no-ops).
	obs *obs.Recorder
}

// SetRecorder attaches an event recorder to this stack: retransmissions
// and retransmission timeouts on every connection are then reported as
// structured events and counted in the hub's metrics registry. Pass nil
// to detach. Safe to call at any time.
func (s *Stack) SetRecorder(r *obs.Recorder) { s.obs = r }

// Recorder returns the stack's recorder (nil when not observed).
func (s *Stack) Recorder() *obs.Recorder { return s.obs }

// NewStack attaches a TCP stack to a host.
func NewStack(h *netsim.Host) *Stack {
	s := &Stack{
		Host:      h,
		eng:       h.Net.Eng,
		listeners: make(map[packet.Port]func(*Conn)),
		conns:     make(map[packet.FiveTuple]*Conn),
		nextPort:  32768,
		tsOffset:  h.Net.Eng.Rand().Uint32(),
	}
	h.SetTCPDeliver(s.deliver)
	return s
}

// Listen registers an accept callback for a local port. Each new inbound
// connection is announced through onAccept once established.
func (s *Stack) Listen(port packet.Port, onAccept func(*Conn)) {
	s.listeners[port] = onAccept
}

// Unlisten removes a listener.
func (s *Stack) Unlisten(port packet.Port) { delete(s.listeners, port) }

// allocPort returns an unused ephemeral port.
func (s *Stack) allocPort() packet.Port {
	for i := 0; i < 65536; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 32768
		}
		inUse := false
		for t := range s.conns {
			if t.SrcPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
	panic("tcp: out of ephemeral ports")
}

// Connect opens a connection to dst:dstPort with the given config and
// returns the connection in SYN-SENT state. Completion is reported via
// conn.OnEstablished.
func (s *Stack) Connect(dst packet.Addr, dstPort packet.Port, cfg Config) *Conn {
	cfg.fillDefaults()
	tuple := packet.FiveTuple{
		Proto:   packet.ProtoTCP,
		SrcIP:   s.Host.Addr,
		DstIP:   dst,
		SrcPort: s.allocPort(),
		DstPort: dstPort,
	}
	c := newConn(s, tuple, cfg)
	s.conns[tuple] = c
	c.startActiveOpen()
	return c
}

// deliver demultiplexes an inbound TCP packet to its connection, or to a
// listener for SYNs, or answers with RST.
func (s *Stack) deliver(p *packet.Packet) {
	local := p.Tuple.Reverse() // key from our perspective
	if c, ok := s.conns[local]; ok {
		c.input(p)
		return
	}
	if p.Flags.Has(packet.FlagSYN) && !p.Flags.Has(packet.FlagACK) {
		if onAccept, ok := s.listeners[p.Tuple.DstPort]; ok {
			cfg := DefaultConfig()
			c := newConn(s, local, cfg)
			c.onAccept = onAccept
			s.conns[local] = c
			c.startPassiveOpen(p)
			return
		}
	}
	if !p.Flags.Has(packet.FlagRST) {
		s.sendRST(p)
	}
}

func (s *Stack) sendRST(in *packet.Packet) {
	s.RSTsSent++
	rst := packet.NewTCP(in.Tuple.Reverse(), packet.FlagRST|packet.FlagACK, in.Ack, in.SeqEnd(), nil)
	s.Host.Send(rst)
}

func (s *Stack) removeConn(c *Conn) { delete(s.conns, c.tuple) }

// Conns returns the number of live connections (all states but CLOSED).
func (s *Stack) Conns() int { return len(s.conns) }

// tsNow returns the timestamp-option clock value: virtual milliseconds
// plus a per-host random offset.
func (s *Stack) tsNow() uint32 {
	return s.tsOffset + uint32(s.eng.Now()/time.Millisecond)
}

// TSNow exposes the stack's timestamp clock (Dysco splice needs it to
// compute timestamp deltas).
func (s *Stack) TSNow() uint32 { return s.tsNow() }

// Find returns the connection whose local five-tuple (Src = this host's
// side) matches, or nil.
func (s *Stack) Find(local packet.FiveTuple) *Conn { return s.conns[local] }

// String identifies the stack by host.
func (s *Stack) String() string { return fmt.Sprintf("tcp@%s", s.Host.Name) }
