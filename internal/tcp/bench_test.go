package tcp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// BenchmarkBulkTransfer measures simulator+stack throughput: virtual bytes
// delivered per wall-clock second of benchmarking.
func BenchmarkBulkTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i))
		n := netsim.New(eng)
		hc := n.AddHost("c", packet.MakeAddr(10, 0, 0, 1))
		hs := n.AddHost("s", packet.MakeAddr(10, 0, 0, 2))
		n.Connect(hc, hs, netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Gbps(1)})
		n.ComputeRoutes()
		client := NewStack(hc)
		server := NewStack(hs)
		got := 0
		server.Listen(80, func(c *Conn) {
			c.OnData = func(p []byte) { got += len(p) }
		})
		c := client.Connect(hs.Addr, 80, Config{})
		c.OnEstablished = func() { c.Send(make([]byte, 1<<20)) }
		eng.Run(time.Second)
		if got != 1<<20 {
			b.Fatalf("delivered %d", got)
		}
		b.SetBytes(1 << 20)
	}
}

// BenchmarkHandshake measures connection setup cost through the simulator.
func BenchmarkHandshake(b *testing.B) {
	eng := sim.NewEngine(1)
	n := netsim.New(eng)
	hc := n.AddHost("c", packet.MakeAddr(10, 0, 0, 1))
	hs := n.AddHost("s", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(hc, hs, netsim.LinkConfig{Delay: 10 * time.Microsecond})
	n.ComputeRoutes()
	client := NewStack(hc)
	server := NewStack(hs)
	server.Listen(80, func(c *Conn) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := client.Connect(hs.Addr, 80, Config{})
		eng.Run(eng.Now() + time.Millisecond)
		if c.State() != StateEstablished {
			b.Fatal("not established")
		}
		c.Abort()
	}
}

func BenchmarkScoreboardMerge(b *testing.B) {
	blocks := []packet.SACKBlock{{Start: 1000, End: 2000}, {Start: 5000, End: 6000}, {Start: 9000, End: 9500}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb sackScoreboard
		sb.merge(blocks, 0)
		sb.firstHole(0, 20000)
	}
}
