package packet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fullSynPacket builds a SYN carrying every option the codec knows plus a
// payload — the widest wire image Serialize can produce, so its prefixes
// cross every parser boundary (IP header, TCP fixed header, each option,
// padding, payload).
func fullSynPacket() *Packet {
	tpl := FiveTuple{
		SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2),
		SrcPort: 1234, DstPort: 80,
	}
	p := NewTCP(tpl, FlagSYN, 100, 0, []byte("hello"))
	p.Opts = Options{
		MSS:           1460,
		WScale:        7,
		SACKPermitted: true,
		SACK:          []SACKBlock{{Start: 10, End: 20}},
		TS:            &Timestamp{Val: 1, Ecr: 2},
		HasDyscoTag:   true,
		DyscoTag:      0xdeadbeef,
	}
	p.Window = 65535
	return p
}

// TestParseTruncationEveryBoundary cuts the serialized SYN-with-options at
// every byte boundary: each prefix must return an error, never panic (the
// IP total-length check makes every strict prefix invalid).
func TestParseTruncationEveryBoundary(t *testing.T) {
	b := fullSynPacket().Serialize()
	if _, err := Parse(b); err != nil {
		t.Fatalf("full packet does not parse: %v", err)
	}
	for i := 0; i < len(b); i++ {
		if _, err := Parse(b[:i]); err == nil {
			t.Errorf("Parse accepted a %d-byte prefix of a %d-byte packet", i, len(b))
		}
	}
}

func TestParseTruncationEveryBoundaryUDP(t *testing.T) {
	p := NewUDP(FiveTuple{
		SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2),
		SrcPort: 5353, DstPort: 53,
	}, []byte("payload"))
	b := p.Serialize()
	if _, err := Parse(b); err != nil {
		t.Fatalf("full packet does not parse: %v", err)
	}
	for i := 0; i < len(b); i++ {
		if _, err := Parse(b[:i]); err == nil {
			t.Errorf("Parse accepted a %d-byte prefix of a %d-byte datagram", i, len(b))
		}
	}
}

func TestParseChecksumMismatch(t *testing.T) {
	// Transport checksum: flip a payload bit.
	b := fullSynPacket().Serialize()
	b[len(b)-1] ^= 0x01
	if _, err := Parse(b); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("flipped payload bit: got %v, want transport checksum error", err)
	}

	// IP header checksum: flip the TTL.
	b = fullSynPacket().Serialize()
	b[8] ^= 0x01
	if _, err := Parse(b); err == nil || !strings.Contains(err.Error(), "IP header checksum") {
		t.Errorf("flipped TTL: got %v, want IP header checksum error", err)
	}
}

// TestParseOddLengthPayloadChecksum pins the RFC 1071 odd-length padding
// path through a full serialize/parse round trip for both transports.
func TestParseOddLengthPayloadChecksum(t *testing.T) {
	tpl := FiveTuple{
		SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2),
		SrcPort: 9000, DstPort: 9001,
	}
	for _, payload := range [][]byte{[]byte("x"), []byte("odd"), []byte("12345")} {
		u, err := Parse(NewUDP(tpl, payload).Serialize())
		if err != nil {
			t.Errorf("UDP odd payload %q: %v", payload, err)
		} else if string(u.Payload) != string(payload) {
			t.Errorf("UDP payload %q round-tripped to %q", payload, u.Payload)
		}
		c, err := Parse(NewTCP(tpl, FlagACK, 1, 2, payload).Serialize())
		if err != nil {
			t.Errorf("TCP odd payload %q: %v", payload, err)
		} else if string(c.Payload) != string(payload) {
			t.Errorf("TCP payload %q round-tripped to %q", payload, c.Payload)
		}
	}
}

func TestParseRejectsBadDataOffset(t *testing.T) {
	b := fullSynPacket().Serialize()
	// Data offset nibble < 5 words: header shorter than the fixed part.
	b[20+12] = 4 << 4
	if _, err := Parse(b); err == nil || !strings.Contains(err.Error(), "data offset") {
		t.Errorf("hlen 16: got %v, want data-offset error", err)
	}
	// Data offset past the end of the segment: a bare ACK's transport is
	// only 20 bytes, so claiming a 60-byte header overruns it.
	b = NewTCP(FiveTuple{
		SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2),
		SrcPort: 1234, DstPort: 80,
	}, FlagACK, 1, 2, nil).Serialize()
	b[20+12] = 15 << 4
	if _, err := Parse(b); err == nil || !strings.Contains(err.Error(), "data offset") {
		t.Errorf("hlen 60 > segment: got %v, want data-offset error", err)
	}
}

// TestParseOptionsMalformed is the per-option negative table: every
// malformed encoding errors with a specific message, and unknown options
// are skipped like a real stack.
func TestParseOptionsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want string // "" = must parse clean
	}{
		{"kind without length", []byte{optMSS}, "truncated TCP option"},
		{"length below minimum", []byte{optMSS, 1}, "bad TCP option length"},
		{"length past end", []byte{optMSS, 5, 0, 0}, "bad TCP option length"},
		{"mss wrong body", []byte{optMSS, 3, 9}, "bad MSS option"},
		{"wscale wrong body", []byte{optWScale, 4, 0, 0}, "bad window-scale option"},
		{"sack ragged body", []byte{optSACK, 6, 0, 0, 0, 0}, "bad SACK option"},
		{"timestamp wrong body", []byte{optTimestamp, 4, 0, 0}, "bad timestamp option"},
		{"dysco tag wrong body", []byte{OptDyscoTag, 3, 9}, "bad Dysco tag option"},
		{"unknown option skipped", []byte{200, 3, 9, optEnd}, ""},
		{"end stops parsing", []byte{optEnd, optMSS}, ""},
		{"nop padding only", []byte{optNOP, optNOP, optNOP}, ""},
	}
	for _, tc := range cases {
		var o Options
		err := parseOptions(tc.in, &o)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestParseOptionsTruncationNeverPanics cuts a full option block at every
// boundary. A cut can land between options (legal, shorter list) but must
// never panic, and a cut inside an option body must error.
func TestParseOptionsTruncationNeverPanics(t *testing.T) {
	p := fullSynPacket()
	full := appendOptions(nil, &p.Opts)
	for i := 0; i <= len(full); i++ {
		var o Options
		_ = parseOptions(full[:i], &o) // must not panic
	}
	// One byte into the MSS body (kind+len present, body short).
	var o Options
	if err := parseOptions(full[:3], &o); err == nil {
		t.Error("option cut inside its body parsed clean")
	}
}

func FuzzPacketParse(f *testing.F) {
	f.Add(fullSynPacket().Serialize())
	f.Add(NewUDP(FiveTuple{SrcIP: MakeAddr(1, 2, 3, 4), DstIP: MakeAddr(5, 6, 7, 8), SrcPort: 1, DstPort: 2}, []byte("odd")).Serialize())
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := Parse(b)
		if err != nil {
			return
		}
		// Anything Parse accepts must survive a serialize/parse round trip
		// with its addressing and sequencing intact.
		p2, err := Parse(p.Serialize())
		if err != nil {
			t.Fatalf("re-parse of accepted packet failed: %v", err)
		}
		if p2.Tuple != p.Tuple || p2.Seq != p.Seq || p2.Ack != p.Ack || p2.Flags != p.Flags {
			t.Fatalf("round trip changed packet: %+v -> %+v", p, p2)
		}
		if string(p2.Payload) != string(p.Payload) {
			t.Fatalf("round trip changed payload: %q -> %q", p.Payload, p2.Payload)
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus from the real
// encoder. Run with WRITE_FUZZ_CORPUS=1 after a wire-format change.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("corpus generator; set WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz seeds")
	}
	syn := fullSynPacket().Serialize()
	udp := NewUDP(FiveTuple{
		SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2),
		SrcPort: 5353, DstPort: 53,
	}, []byte("odd")).Serialize()
	writeFuzzCorpus(t, "FuzzPacketParse", map[string][]byte{
		"tcp_syn_all_options": syn,
		"udp_odd_payload":     udp,
		"tcp_truncated":       syn[:len(syn)/2],
		"garbage":             []byte{0x45, 0x00, 0xff, 0xfe, 0x01},
	})
}

// writeFuzzCorpus emits seeds in the native `go test fuzz v1` format.
func writeFuzzCorpus(t *testing.T, fuzzName string, seeds map[string][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
