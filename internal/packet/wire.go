package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TCP option kinds used on the wire.
const (
	optEnd           = 0
	optNOP           = 1
	optMSS           = 2
	optWScale        = 3
	optSACKPermitted = 4
	optSACK          = 5
	optTimestamp     = 8
	// OptDyscoTag is TCP option 253 (reserved for experimentation, RFC
	// 4727); Dysco uses it to tag SYN packets inside middlebox hosts so an
	// agent can match a SYN going into a five-tuple-modifying middlebox
	// with the SYN coming out (§2.1, §4.2). Tags never leave the host.
	OptDyscoTag = 253
)

// maxOptionBytes is the TCP limit: the 4-bit data offset caps the header at
// 60 bytes, leaving 40 for options.
const maxOptionBytes = 40

func fixedOptionsLen(o *Options) int {
	n := 0
	if o.MSS != 0 {
		n += 4
	}
	if o.WScale >= 0 {
		n += 3
	}
	if o.SACKPermitted {
		n += 2
	}
	if o.TS != nil {
		n += 10
	}
	if o.HasDyscoTag {
		n += 6
	}
	return n
}

// sackBlocksThatFit returns how many SACK blocks can go on the wire next to
// the other options, as a real stack trims them (Linux sends at most 3 with
// timestamps enabled).
func sackBlocksThatFit(o *Options) int {
	if len(o.SACK) == 0 {
		return 0
	}
	avail := maxOptionBytes - fixedOptionsLen(o)
	n := (avail - 2) / 8
	if n > 4 {
		n = 4
	}
	if n > len(o.SACK) {
		n = len(o.SACK)
	}
	if n < 0 {
		n = 0
	}
	return n
}

func optionsWireLen(o *Options) int {
	n := fixedOptionsLen(o)
	if blocks := sackBlocksThatFit(o); blocks > 0 {
		n += 2 + 8*blocks
	}
	return n
}

func tcpHeaderLen(o *Options) int {
	n := 20 + optionsWireLen(o)
	if rem := n % 4; rem != 0 {
		n += 4 - rem
	}
	return n
}

func appendOptions(b []byte, o *Options) []byte {
	if o.MSS != 0 {
		b = append(b, optMSS, 4)
		b = binary.BigEndian.AppendUint16(b, o.MSS)
	}
	if o.WScale >= 0 {
		b = append(b, optWScale, 3, byte(o.WScale))
	}
	if o.SACKPermitted {
		b = append(b, optSACKPermitted, 2)
	}
	if n := sackBlocksThatFit(o); n > 0 {
		blocks := o.SACK[:n]
		b = append(b, optSACK, byte(2+8*len(blocks)))
		for _, blk := range blocks {
			b = binary.BigEndian.AppendUint32(b, blk.Start)
			b = binary.BigEndian.AppendUint32(b, blk.End)
		}
	}
	if o.TS != nil {
		b = append(b, optTimestamp, 10)
		b = binary.BigEndian.AppendUint32(b, o.TS.Val)
		b = binary.BigEndian.AppendUint32(b, o.TS.Ecr)
	}
	if o.HasDyscoTag {
		b = append(b, OptDyscoTag, 6)
		b = binary.BigEndian.AppendUint32(b, o.DyscoTag)
	}
	for len(b)%4 != 0 {
		b = append(b, optNOP)
	}
	return b
}

func parseOptions(b []byte, o *Options) error {
	*o = NoOptions()
	for len(b) > 0 {
		kind := b[0]
		switch kind {
		case optEnd:
			return nil
		case optNOP:
			b = b[1:]
			continue
		}
		if len(b) < 2 {
			return errors.New("packet: truncated TCP option")
		}
		length := int(b[1])
		if length < 2 || length > len(b) {
			return fmt.Errorf("packet: bad TCP option length %d", length)
		}
		body := b[2:length]
		switch kind {
		case optMSS:
			if len(body) != 2 {
				return errors.New("packet: bad MSS option")
			}
			o.MSS = binary.BigEndian.Uint16(body)
		case optWScale:
			if len(body) != 1 {
				return errors.New("packet: bad window-scale option")
			}
			o.WScale = int8(body[0])
		case optSACKPermitted:
			o.SACKPermitted = true
		case optSACK:
			if len(body)%8 != 0 {
				return errors.New("packet: bad SACK option")
			}
			// Consume-from-front so each read is dominated by the loop's
			// own length guard (wiresafe proves per-index safety).
			for len(body) >= 8 {
				o.SACK = append(o.SACK, SACKBlock{
					Start: binary.BigEndian.Uint32(body),
					End:   binary.BigEndian.Uint32(body[4:]),
				})
				body = body[8:]
			}
		case optTimestamp:
			if len(body) != 8 {
				return errors.New("packet: bad timestamp option")
			}
			o.TS = &Timestamp{
				Val: binary.BigEndian.Uint32(body),
				Ecr: binary.BigEndian.Uint32(body[4:]),
			}
		case OptDyscoTag:
			if len(body) != 4 {
				return errors.New("packet: bad Dysco tag option")
			}
			o.HasDyscoTag = true
			o.DyscoTag = binary.BigEndian.Uint32(body)
		default:
			// Unknown options are skipped, as a real stack would.
		}
		b = b[length:]
	}
	return nil
}

// Serialize renders the packet as wire bytes: 20-byte IPv4 header plus the
// transport header (with options) and payload. The transport checksum is
// computed over the pseudo-header as usual; the stored Checksum field is
// updated to match. One allocation: the exact-size frame buffer.
func (p *Packet) Serialize() []byte {
	return p.AppendTo(make([]byte, 0, p.Size()))
}

// AppendTo appends the packet's wire bytes to b and returns the extended
// slice, allocating only if b lacks capacity (Size() bytes are needed).
// Feeders that serialize per packet can reuse one scratch buffer with
// AppendTo(buf[:0]) and stop paying an allocation per frame.
func (p *Packet) AppendTo(b []byte) []byte {
	switch p.Tuple.Proto {
	case ProtoTCP:
		b = p.appendIP(b, tcpHeaderLen(&p.Opts)+len(p.Payload))
		return p.appendTCP(b)
	case ProtoUDP:
		b = p.appendIP(b, 8+len(p.Payload))
		return p.appendUDP(b)
	default:
		panic("packet: serialize of unknown protocol")
	}
}

// appendIP appends the 20-byte IPv4 header for a transport segment of
// transportLen bytes. The header is built in a fixed-size local first so
// its checksum covers the finished bytes (and so the wiresafe extractor
// sees concrete offsets for every field, checksum back-patch included).
func (p *Packet) appendIP(b []byte, transportLen int) []byte {
	total := 20 + transportLen
	hdr := make([]byte, 20)
	hdr[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(hdr[2:], uint16(total))
	hdr[8] = p.TTL
	hdr[9] = byte(p.Tuple.Proto)
	binary.BigEndian.PutUint32(hdr[12:], uint32(p.Tuple.SrcIP))
	binary.BigEndian.PutUint32(hdr[16:], uint32(p.Tuple.DstIP))
	csum := Checksum(hdr)
	binary.BigEndian.PutUint16(hdr[10:], csum)
	return append(b, hdr...)
}

// appendTCP appends the TCP header (with options) and payload, then
// back-patches the transport checksum over the appended segment.
func (p *Packet) appendTCP(b []byte) []byte {
	hlen := tcpHeaderLen(&p.Opts)
	th := len(b)
	b = binary.BigEndian.AppendUint16(b, uint16(p.Tuple.SrcPort))
	b = binary.BigEndian.AppendUint16(b, uint16(p.Tuple.DstPort))
	b = binary.BigEndian.AppendUint32(b, p.Seq)
	b = binary.BigEndian.AppendUint32(b, p.Ack)
	b = append(b, byte(hlen/4)<<4, byte(p.Flags))
	b = binary.BigEndian.AppendUint16(b, p.Window)
	b = binary.BigEndian.AppendUint16(b, 0) // checksum, back-patched below
	b = append(b, 0, 0)                     // urgent pointer
	b = appendOptions(b, &p.Opts)
	b = append(b, p.Payload...)
	seg := b[th:]
	csum := Checksum(pseudoHeader(p.Tuple, len(seg)), seg)
	binary.BigEndian.PutUint16(seg[16:], csum)
	p.Checksum = csum
	return b
}

// appendUDP appends the UDP header and payload, then back-patches the
// transport checksum over the appended segment.
func (p *Packet) appendUDP(b []byte) []byte {
	th := len(b)
	b = binary.BigEndian.AppendUint16(b, uint16(p.Tuple.SrcPort))
	b = binary.BigEndian.AppendUint16(b, uint16(p.Tuple.DstPort))
	b = binary.BigEndian.AppendUint16(b, uint16(8+len(p.Payload)))
	b = binary.BigEndian.AppendUint16(b, 0) // checksum, back-patched below
	b = append(b, p.Payload...)
	seg := b[th:]
	csum := Checksum(pseudoHeader(p.Tuple, len(seg)), seg)
	binary.BigEndian.PutUint16(seg[6:], csum)
	p.Checksum = csum
	return b
}

// Parse decodes wire bytes produced by Serialize back into a Packet. It
// verifies the IP header and transport checksums and returns an error on
// mismatch. Parse never panics on truncated or malformed input (every
// byte read inside the sub-parsers is dominated by a length guard, proven
// by the wiresafe lint pass).
func Parse(b []byte) (*Packet, error) {
	p := &Packet{Opts: NoOptions()}
	t, err := parseIP(b, p)
	if err != nil {
		return nil, err
	}
	switch p.Tuple.Proto {
	case ProtoTCP:
		if err := parseTCP(t, p); err != nil {
			return nil, err
		}
	case ProtoUDP:
		if err := parseUDP(t, p); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("packet: unknown protocol %d", byte(p.Tuple.Proto))
	}
	return p, nil
}

// parseIP decodes and validates the 20-byte IPv4 header written by
// serializeIP and returns the transport bytes it delimits.
func parseIP(b []byte, p *Packet) ([]byte, error) {
	if len(b) < 20 {
		return nil, errors.New("packet: short IP header")
	}
	if b[0]>>4 != 4 {
		return nil, errors.New("packet: not IPv4")
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total > len(b) || total < 20 {
		return nil, errors.New("packet: bad IP total length")
	}
	stored := binary.BigEndian.Uint16(b[10:])
	var hdr [20]byte
	copy(hdr[:], b)
	hdr[10], hdr[11] = 0, 0
	if got := Checksum(hdr[:]); got != stored {
		return nil, fmt.Errorf("packet: bad IP header checksum %#04x, want %#04x", stored, got)
	}
	p.TTL = b[8]
	p.Tuple.Proto = Proto(b[9])
	p.Tuple.SrcIP = Addr(binary.BigEndian.Uint32(b[12:]))
	p.Tuple.DstIP = Addr(binary.BigEndian.Uint32(b[16:]))
	return b[20:total], nil
}

// parseTCP decodes the transport bytes written by serializeTCP.
func parseTCP(t []byte, p *Packet) error {
	if len(t) < 20 {
		return errors.New("packet: short TCP header")
	}
	p.Tuple.SrcPort = Port(binary.BigEndian.Uint16(t[0:]))
	p.Tuple.DstPort = Port(binary.BigEndian.Uint16(t[2:]))
	p.Seq = binary.BigEndian.Uint32(t[4:])
	p.Ack = binary.BigEndian.Uint32(t[8:])
	hlen := int(t[12]>>4) * 4
	if hlen < 20 || hlen > len(t) {
		return errors.New("packet: bad TCP data offset")
	}
	p.Flags = TCPFlags(t[13])
	p.Window = binary.BigEndian.Uint16(t[14:])
	p.Checksum = binary.BigEndian.Uint16(t[16:])
	if err := parseOptions(t[20:hlen], &p.Opts); err != nil {
		return err
	}
	if hlen < len(t) {
		p.Payload = append([]byte(nil), t[hlen:]...)
	}
	return verifyTransportChecksum(p.Tuple, t, 16)
}

// parseUDP decodes the transport bytes written by serializeUDP.
func parseUDP(t []byte, p *Packet) error {
	if len(t) < 8 {
		return errors.New("packet: short UDP header")
	}
	p.Tuple.SrcPort = Port(binary.BigEndian.Uint16(t[0:]))
	p.Tuple.DstPort = Port(binary.BigEndian.Uint16(t[2:]))
	ulen := int(binary.BigEndian.Uint16(t[4:]))
	if ulen != len(t) {
		return fmt.Errorf("packet: bad UDP length %d, want %d", ulen, len(t))
	}
	p.Checksum = binary.BigEndian.Uint16(t[6:])
	if len(t) > 8 {
		p.Payload = append([]byte(nil), t[8:]...)
	}
	return verifyTransportChecksum(p.Tuple, t, 6)
}

func verifyTransportChecksum(t FiveTuple, transport []byte, csumOff int) error {
	stored := binary.BigEndian.Uint16(transport[csumOff:])
	cp := append([]byte(nil), transport...)
	cp[csumOff] = 0
	cp[csumOff+1] = 0
	want := Checksum(pseudoHeader(t, len(transport)), cp)
	if stored != want {
		return fmt.Errorf("packet: bad %s checksum %#04x, want %#04x", t.Proto, stored, want)
	}
	return nil
}

func pseudoHeader(t FiveTuple, transportLen int) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint32(b[0:], uint32(t.SrcIP))
	binary.BigEndian.PutUint32(b[4:], uint32(t.DstIP))
	b[9] = byte(t.Proto)
	binary.BigEndian.PutUint16(b[10:], uint16(transportLen))
	return b
}

// Checksum computes the Internet checksum (RFC 1071) over the
// concatenation of the given byte slices.
func Checksum(chunks ...[]byte) uint16 {
	var sum uint32
	odd := false
	var carryByte byte
	for _, b := range chunks {
		if odd && len(b) > 0 {
			sum += uint32(carryByte)<<8 | uint32(b[0])
			b = b[1:]
			odd = false
		}
		for len(b) >= 2 {
			sum += uint32(b[0])<<8 | uint32(b[1])
			b = b[2:]
		}
		if len(b) == 1 {
			carryByte = b[0]
			odd = true
		}
	}
	if odd {
		sum += uint32(carryByte) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumUpdate16 incrementally updates checksum old when a 16-bit field
// changes from oldVal to newVal (RFC 1624 equation 3: HC' = ~(~HC + ~m + m')).
// Dysco uses this on every rewritten packet to avoid recomputing the
// checksum of the whole packet (§4.2).
func ChecksumUpdate16(old uint16, oldVal, newVal uint16) uint16 {
	sum := uint32(^old&0xffff) + uint32(^oldVal&0xffff) + uint32(newVal)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// ChecksumUpdate32 incrementally updates a checksum for a 32-bit field
// change, treating it as two 16-bit updates.
func ChecksumUpdate32(old uint16, oldVal, newVal uint32) uint16 {
	old = ChecksumUpdate16(old, uint16(oldVal>>16), uint16(newVal>>16))
	return ChecksumUpdate16(old, uint16(oldVal), uint16(newVal))
}

// RewriteTuple replaces the packet's five-tuple with nt and incrementally
// adjusts the stored transport checksum for the address and port changes
// (addresses appear in the pseudo-header, so they affect the transport
// checksum too).
func (p *Packet) RewriteTuple(nt FiveTuple) {
	old := p.Tuple
	c := p.Checksum
	c = ChecksumUpdate32(c, uint32(old.SrcIP), uint32(nt.SrcIP))
	c = ChecksumUpdate32(c, uint32(old.DstIP), uint32(nt.DstIP))
	c = ChecksumUpdate16(c, uint16(old.SrcPort), uint16(nt.SrcPort))
	c = ChecksumUpdate16(c, uint16(old.DstPort), uint16(nt.DstPort))
	p.Checksum = c
	nt.Proto = old.Proto
	p.Tuple = nt
}

// RewriteSeqAck replaces Seq and Ack, incrementally adjusting the checksum.
func (p *Packet) RewriteSeqAck(seq, ack uint32) {
	c := p.Checksum
	c = ChecksumUpdate32(c, p.Seq, seq)
	c = ChecksumUpdate32(c, p.Ack, ack)
	p.Checksum = c
	p.Seq = seq
	p.Ack = ack
}
