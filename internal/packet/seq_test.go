package packet

import "testing"

// Wraparound edge cases for the serial-number helpers. These are the
// exact situations raw uint32 operators get wrong — the seqarith lint
// rule forces all callers through here, so the boundary behaviour must be
// pinned down.

func TestSeqAddWraparound(t *testing.T) {
	tests := []struct {
		s    uint32
		n    int64
		want uint32
	}{
		{0xFFFFFFF0, 0x20, 0x10},    // crosses the wrap mid-segment
		{0xFFFFFFFF, 1, 0},          // lands exactly on zero
		{0, -1, 0xFFFFFFFF},         // backs over the wrap
		{0x10, -0x20, 0xFFFFFFF0},   // negative delta across the wrap
		{0, 1 << 31, 0x80000000},    // half the space in one hop
		{0xFFFFFFF0, 0, 0xFFFFFFF0}, // identity
		{123, 4_294_967_296, 123},   // a full 2^32 cycle is a no-op
		{123, -4_294_967_296, 123},  // ... in either direction
		{0x80000000, -(1 << 31), 0}, // back down half the space
	}
	for _, tt := range tests {
		if got := SeqAdd(tt.s, tt.n); got != tt.want {
			t.Errorf("SeqAdd(%#x, %#x) = %#x, want %#x", tt.s, tt.n, got, tt.want)
		}
	}
}

func TestSeqComparisonsAcrossWrap(t *testing.T) {
	// b is 0x20 bytes "after" a, but numerically smaller: every raw
	// operator inverts here.
	a, b := uint32(0xFFFFFFF0), SeqAdd(0xFFFFFFF0, 0x20)
	if b != 0x10 {
		t.Fatalf("setup: b = %#x", b)
	}
	if !SeqLT(a, b) || SeqLT(b, a) {
		t.Errorf("SeqLT inverted across wrap: SeqLT(%#x,%#x)=%v", a, b, SeqLT(a, b))
	}
	if !SeqGT(b, a) || SeqGT(a, b) {
		t.Errorf("SeqGT inverted across wrap")
	}
	if !SeqLEQ(a, b) || !SeqLEQ(a, a) || SeqLEQ(b, a) {
		t.Errorf("SeqLEQ wrong across wrap")
	}
	if !SeqGEQ(b, a) || !SeqGEQ(b, b) || SeqGEQ(a, b) {
		t.Errorf("SeqGEQ wrong across wrap")
	}
	if SeqMax(a, b) != b || SeqMin(a, b) != a {
		t.Errorf("SeqMax/SeqMin wrong across wrap: max=%#x min=%#x", SeqMax(a, b), SeqMin(a, b))
	}
}

func TestSeqDiffSignAcrossWrap(t *testing.T) {
	tests := []struct {
		a, b uint32
		want int32
	}{
		{0xFFFFFFF0, 0x10, 0x20},   // forward distance across the wrap
		{0x10, 0xFFFFFFF0, -0x20},  // and backwards
		{5, 5, 0},                  // equal
		{0, 0x7FFFFFFF, 1<<31 - 1}, // largest forward distance
		{0x7FFFFFFF, 0, -(1<<31 - 1)},
	}
	for _, tt := range tests {
		if got := SeqDiff(tt.a, tt.b); got != tt.want {
			t.Errorf("SeqDiff(%#x, %#x) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSeqAddDiffRoundTrip(t *testing.T) {
	// SeqAdd(a, SeqDiff(a, b)) == b for every signed distance, including
	// across the wrap: the pair is how §3.4 deltas are computed at splice
	// time and applied per packet.
	points := []uint32{0, 1, 0x10, 0x7FFFFFFF, 0x80000000, 0xFFFFFFF0, 0xFFFFFFFF}
	for _, a := range points {
		for _, b := range points {
			if got := SeqAdd(a, int64(SeqDiff(a, b))); got != b {
				t.Errorf("SeqAdd(%#x, SeqDiff(%#x,%#x)) = %#x, want %#x", a, a, b, got, b)
			}
		}
	}
}

func TestSeqHalfSpaceBoundary(t *testing.T) {
	// At exactly 2^31 apart the ordering is ambiguous by construction
	// (RFC 1982); pin the implementation's choice so it cannot drift:
	// int32(a-b) = math.MinInt32 < 0, so a < b and NOT a > b, for both
	// orientations.
	a, b := uint32(0), uint32(0x80000000)
	if !SeqLT(a, b) || !SeqLT(b, a) {
		t.Errorf("half-space: SeqLT(%#x,%#x)=%v SeqLT(%#x,%#x)=%v; both should hold",
			a, b, SeqLT(a, b), b, a, SeqLT(b, a))
	}
	if SeqGT(a, b) || SeqGT(b, a) {
		t.Errorf("half-space: SeqGT should hold in neither direction")
	}
}
