package packet

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"testing"
	"testing/quick"
)

// refHash is the specification Hash is checked against: stdlib FNV-1a
// over the explicit canonical wire encoding of the tuple.
func refHash(ft FiveTuple) uint64 {
	b := make([]byte, 0, 13)
	b = append(b, byte(ft.Proto))
	b = binary.BigEndian.AppendUint32(b, uint32(ft.SrcIP))
	b = binary.BigEndian.AppendUint32(b, uint32(ft.DstIP))
	b = binary.BigEndian.AppendUint16(b, uint16(ft.SrcPort))
	b = binary.BigEndian.AppendUint16(b, uint16(ft.DstPort))
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func TestHashMatchesStdlibFNV(t *testing.T) {
	cases := []FiveTuple{
		{},
		{Proto: ProtoTCP, SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2), SrcPort: 40000, DstPort: 80},
		{Proto: ProtoUDP, SrcIP: 0xffffffff, DstIP: 1, SrcPort: 65535, DstPort: 1},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cases = append(cases, FiveTuple{
			Proto:   Proto(rng.Intn(256)),
			SrcIP:   Addr(rng.Uint32()),
			DstIP:   Addr(rng.Uint32()),
			SrcPort: Port(rng.Intn(1 << 16)),
			DstPort: Port(rng.Intn(1 << 16)),
		})
	}
	for _, ft := range cases {
		if got, want := ft.Hash(), refHash(ft); got != want {
			t.Fatalf("Hash(%v) = %#x, want %#x (stdlib fnv over wire encoding)", ft, got, want)
		}
	}
}

// TestHashFieldSensitivity: every field participates in the hash — a
// single-field change must change the result (FNV-1a has no colliding
// single-byte flips on distinct positions for these inputs).
func TestHashFieldSensitivity(t *testing.T) {
	base := FiveTuple{Proto: ProtoTCP, SrcIP: MakeAddr(192, 168, 0, 1), DstIP: MakeAddr(192, 168, 0, 2), SrcPort: 1234, DstPort: 80}
	h := base.Hash()
	variants := []FiveTuple{base, base, base, base, base}
	variants[0].Proto = ProtoUDP
	variants[1].SrcIP++
	variants[2].DstIP++
	variants[3].SrcPort++
	variants[4].DstPort++
	for i, v := range variants {
		if v.Hash() == h {
			t.Errorf("variant %d (%v) collides with base", i, v)
		}
	}
	// Direction matters: the reverse tuple must hash differently, or the
	// two directions of every session would share a shard by construction.
	if base.Reverse().Hash() == h {
		t.Error("reverse tuple hashes equal to forward tuple")
	}
}

// TestHashShardDistribution is the property the sharded rewrite table
// relies on: over random tuples, bucketing by the low hash bits must not
// overload any shard. The bound (2× the mean occupancy) is loose enough
// to be stable for random draws and tight enough to catch a broken mix
// (e.g. hashing only half the fields, or using the non-FNV byte order).
func TestHashShardDistribution(t *testing.T) {
	const (
		shards  = 64
		tuples  = 64 * 256 // mean 256 per shard
		maxLoad = 2 * (tuples / shards)
	)
	rng := rand.New(rand.NewSource(1))
	check := func(raw uint64) bool {
		var counts [shards]int
		for i := 0; i < tuples; i++ {
			ft := FiveTuple{
				Proto:   ProtoTCP,
				SrcIP:   Addr(rng.Uint32()),
				DstIP:   Addr(rng.Uint32()),
				SrcPort: Port(rng.Intn(1 << 16)),
				DstPort: Port(rng.Intn(1 << 16)),
			}
			// Fold the quick-generated raw value in so each iteration of
			// quick.Check sees a different population.
			ft.SrcIP ^= Addr(raw)
			ft.DstIP ^= Addr(raw >> 32)
			counts[Bucket(ft.Hash(), shards)]++
		}
		for s, c := range counts {
			if c > maxLoad {
				t.Logf("shard %d holds %d tuples (mean %d, cap %d)", s, c, tuples/shards, maxLoad)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8, Rand: rng}); err != nil {
		t.Fatalf("shard occupancy property failed: %v", err)
	}
}

// Sequential tuples (the port-allocator pattern: same hosts, adjacent
// ports) must also spread: this is the actual key population the
// dataplane tables see from core's allocPort. Raw FNV-1a low bits fail
// this (the multiply pushes entropy upward), which is exactly why
// Bucket folds and takes the top bits.
func TestHashSequentialTupleDistribution(t *testing.T) {
	const shards = 64
	const tuples = shards * 128
	var counts [shards]int
	base := FiveTuple{Proto: ProtoTCP, SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2)}
	for i := 0; i < tuples; i++ {
		ft := base
		ft.SrcPort = Port(40000 + i)
		ft.DstPort = Port(40001 + i)
		counts[Bucket(ft.Hash(), shards)]++
	}
	for s, c := range counts {
		if c > 2*(tuples/shards) {
			t.Errorf("shard %d holds %d sequential tuples (mean %d)", s, c, tuples/shards)
		}
	}
}

func TestBucketRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 64, 1024} {
		for i := 0; i < 1000; i++ {
			h := rng.Uint64()
			b := Bucket(h, n)
			if b < 0 || b >= n {
				t.Fatalf("Bucket(%#x, %d) = %d out of range", h, n, b)
			}
		}
		if n > 1 {
			// All buckets reachable over a modest draw.
			seen := make(map[int]bool)
			for i := 0; i < 64*n; i++ {
				seen[Bucket(rng.Uint64(), n)] = true
			}
			if len(seen) != n {
				t.Errorf("Bucket over %d draws hit %d/%d buckets", 64*n, len(seen), n)
			}
		}
	}
}

func BenchmarkFiveTupleHash(b *testing.B) {
	ft := FiveTuple{Proto: ProtoTCP, SrcIP: MakeAddr(10, 0, 0, 1), DstIP: MakeAddr(10, 0, 0, 2), SrcPort: 40000, DstPort: 80}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= ft.Hash()
	}
	_ = sink
}
