package packet

// FNV-1a 64-bit parameters (FNV is the repo-wide fingerprint function:
// the observability hub, the causal DAG, and the fault-schedule hashes
// all use it, so the data plane does too).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1aByte folds one byte into an FNV-1a state.
func fnv1aByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// Hash returns the FNV-1a 64-bit hash of the five-tuple's canonical wire
// encoding (big endian: u8 proto | u32 srcIP | u32 dstIP | u16 srcPort |
// u16 dstPort — the same 13-byte layout core's appendTuple puts on the
// wire), computed without materializing the bytes. It is the hash behind
// everything that shards or load-balances by flow: the concurrent
// rewrite table's shard index and the engine's worker (RSS queue)
// selection, both derived through Bucket. Allocation-free and
// branch-free, proven on the hot path by the allocfree/blockfree lint
// rules.
func (ft FiveTuple) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = fnv1aByte(h, byte(ft.Proto))
	h = fnv1aByte(h, byte(ft.SrcIP>>24))
	h = fnv1aByte(h, byte(ft.SrcIP>>16))
	h = fnv1aByte(h, byte(ft.SrcIP>>8))
	h = fnv1aByte(h, byte(ft.SrcIP))
	h = fnv1aByte(h, byte(ft.DstIP>>24))
	h = fnv1aByte(h, byte(ft.DstIP>>16))
	h = fnv1aByte(h, byte(ft.DstIP>>8))
	h = fnv1aByte(h, byte(ft.DstIP))
	h = fnv1aByte(h, byte(ft.SrcPort>>8))
	h = fnv1aByte(h, byte(ft.SrcPort))
	h = fnv1aByte(h, byte(ft.DstPort>>8))
	h = fnv1aByte(h, byte(ft.DstPort))
	return h
}

// fibMix is 2^64 / φ (the Fibonacci hashing multiplier), odd so the
// multiply is a bijection on uint64.
const fibMix = 0x9E3779B97F4A7C15

// Bucket maps a Hash value onto one of n buckets, where n must be a
// power of two. It multiplies by the Fibonacci constant and keeps the
// TOP log2(n) bits of the product: multiplication propagates entropy
// upward, so the top bits mix every input byte, whereas the raw FNV-1a
// low bits correlate for sequential inputs (adjacent ports from a port
// allocator would pile onto a few shards). Every component that buckets
// tuples — shard index, worker queue — goes through this one function.
func Bucket(h uint64, n int) int {
	return int((h * fibMix) >> (64 - uint(trailingZeros(uint64(n)))))
}

// trailingZeros is math/bits.TrailingZeros64 restricted to the
// power-of-two inputs Bucket accepts (n == 1<<k, k in [0,63]); written
// out so the packet hot path keeps zero out-of-module calls for the
// allocfree/blockfree proofs.
func trailingZeros(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
