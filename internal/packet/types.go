// Package packet models the packets exchanged in the simulated network:
// an IPv4-like network header, TCP and UDP transport headers, TCP options
// (including the experimental option 253 used for Dysco SYN tags), and a
// wire format with full and incremental (RFC 1624) Internet checksums.
//
// Packets travel through the simulator as structs for speed, but the wire
// serialization is real, tested, and used wherever checksum behaviour
// matters (the checksum-offload experiments of Figure 8).
package packet

import "fmt"

// Addr is an IPv4-like 32-bit host address.
type Addr uint32

// MakeAddr builds an address from dotted-quad components.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Port is a 16-bit transport port.
type Port uint16

// Proto identifies the transport protocol of a packet.
type Proto uint8

// Transport protocol numbers (IANA values, for wire fidelity).
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FiveTuple identifies a session or subsession, exactly as in the paper:
// protocol plus source/destination address and port.
type FiveTuple struct {
	Proto   Proto
	SrcIP   Addr
	DstIP   Addr
	SrcPort Port
	DstPort Port
}

// Reverse returns the five-tuple of the opposite direction.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		Proto:   ft.Proto,
		SrcIP:   ft.DstIP,
		DstIP:   ft.SrcIP,
		SrcPort: ft.DstPort,
		DstPort: ft.SrcPort,
	}
}

// Less orders five-tuples lexicographically by field. It exists so code
// that walks per-session maps can visit sessions in a deterministic order
// (Go map iteration is randomized per run).
func (ft FiveTuple) Less(o FiveTuple) bool {
	switch {
	case ft.Proto != o.Proto:
		return ft.Proto < o.Proto
	case ft.SrcIP != o.SrcIP:
		return ft.SrcIP < o.SrcIP
	case ft.DstIP != o.DstIP:
		return ft.DstIP < o.DstIP
	case ft.SrcPort != o.SrcPort:
		return ft.SrcPort < o.SrcPort
	default:
		return ft.DstPort < o.DstPort
	}
}

// String renders "tcp 1.2.3.4:80 > 5.6.7.8:12345".
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s %s:%d > %s:%d", ft.Proto, ft.SrcIP, ft.SrcPort, ft.DstIP, ft.DstPort)
}

// TCPFlags is the TCP control-bit set.
type TCPFlags uint8

// TCP control bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// Has reports whether all bits in f are set.
func (fl TCPFlags) Has(f TCPFlags) bool { return fl&f == f }

// String renders flags compactly, e.g. "SYN|ACK".
func (fl TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagFIN, "FIN"},
		{FlagRST, "RST"}, {FlagPSH, "PSH"},
	}
	out := ""
	for _, n := range names {
		if fl.Has(n.bit) {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "-"
	}
	return out
}
