package packet

import "fmt"

// SACKBlock is one selective-acknowledgment block [Start, End) in the
// receiver's sequence space.
type SACKBlock struct {
	Start uint32
	End   uint32
}

// Timestamp is the TCP timestamp option payload (RFC 7323): the sender's
// clock value and the echo of the peer's most recent timestamp.
type Timestamp struct {
	Val uint32
	Ecr uint32
}

// Options carries the TCP options Dysco must understand and, for spliced
// sessions, translate (§4.2): MSS, window scaling, SACK, timestamps, and
// the experimental option 253 used to tag SYN packets inside middlebox
// hosts (§2.1, §4.2). Zero values mean "option absent" except where a
// presence flag exists.
type Options struct {
	MSS           uint16 // 0 = absent
	WScale        int8   // -1 = absent; else shift count 0..14
	SACKPermitted bool
	SACK          []SACKBlock // nil = absent; max 4 blocks on the wire
	TS            *Timestamp  // nil = absent
	HasDyscoTag   bool
	DyscoTag      uint32 // option 253 payload: unique session id
}

// NoOptions returns an Options with every option absent (WScale must be -1,
// so the zero value is not suitable).
func NoOptions() Options { return Options{WScale: -1} }

// Clone deep-copies the options.
func (o Options) Clone() Options {
	c := o
	if o.SACK != nil {
		c.SACK = append([]SACKBlock(nil), o.SACK...)
	}
	if o.TS != nil {
		ts := *o.TS
		c.TS = &ts
	}
	return c
}

// Packet is one network packet in flight. TCP fields are meaningful only
// when Tuple.Proto == ProtoTCP; UDP packets use only Tuple and Payload.
type Packet struct {
	Tuple   FiveTuple
	TTL     uint8
	Seq     uint32
	Ack     uint32
	Flags   TCPFlags
	Window  uint16 // raw (unscaled) advertised window
	Opts    Options
	Payload []byte

	// ArrivedFrom is simulator metadata (not on the wire): the address of
	// the neighbor that delivered this packet on its last hop. Rule-based
	// switches use it to emulate in-port matching.
	ArrivedFrom Addr

	// Corrupted is simulator metadata: a fault injector damaged the payload
	// in flight. The receiving host's checksum verification detects it and
	// drops the packet, as real hardware/software checksumming would.
	Corrupted bool

	// Checksum is the transport checksum as carried on the wire. The
	// simulator computes it on transmit unless the sending NIC models
	// checksum offload, in which case it is filled with the correct value
	// at zero modeled CPU cost (as hardware would).
	Checksum uint16
}

// DefaultTTL is the initial hop limit for new packets.
const DefaultTTL = 64

// NewTCP builds a TCP packet with sensible defaults (TTL, empty options).
func NewTCP(t FiveTuple, flags TCPFlags, seq, ack uint32, payload []byte) *Packet {
	t.Proto = ProtoTCP
	return &Packet{Tuple: t, TTL: DefaultTTL, Seq: seq, Ack: ack, Flags: flags, Opts: NoOptions(), Payload: payload}
}

// NewUDP builds a UDP datagram.
func NewUDP(t FiveTuple, payload []byte) *Packet {
	t.Proto = ProtoUDP
	return &Packet{Tuple: t, TTL: DefaultTTL, Opts: NoOptions(), Payload: payload}
}

// IsTCP reports whether the packet is TCP.
func (p *Packet) IsTCP() bool { return p.Tuple.Proto == ProtoTCP }

// IsUDP reports whether the packet is UDP.
func (p *Packet) IsUDP() bool { return p.Tuple.Proto == ProtoUDP }

// DataLen returns the TCP payload length in bytes.
func (p *Packet) DataLen() int { return len(p.Payload) }

// SeqEnd returns Seq plus the sequence space the segment occupies
// (payload bytes, +1 for SYN, +1 for FIN).
func (p *Packet) SeqEnd() uint32 {
	n := int64(len(p.Payload))
	if p.Flags.Has(FlagSYN) {
		n++
	}
	if p.Flags.Has(FlagFIN) {
		n++
	}
	return SeqAdd(p.Seq, n)
}

// Clone deep-copies the packet. The payload is shared copy-on-write style
// only if share is requested via ShallowClone; Clone always copies it so a
// middlebox may rewrite bytes safely.
func (p *Packet) Clone() *Packet {
	c := *p
	c.Opts = p.Opts.Clone()
	if p.Payload != nil {
		c.Payload = append([]byte(nil), p.Payload...)
	}
	return &c
}

// ShallowClone copies the packet headers but shares the payload slice. Use
// when the payload is immutable along the path (the common fast path).
func (p *Packet) ShallowClone() *Packet {
	c := *p
	c.Opts = p.Opts.Clone()
	return &c
}

// Size returns the modeled on-wire size in bytes: 20 bytes of IP header,
// the transport header with options, and the payload. This is what link
// bandwidth and packet-size accounting use.
func (p *Packet) Size() int {
	const ipHeader = 20
	switch p.Tuple.Proto {
	case ProtoTCP:
		return ipHeader + tcpHeaderLen(&p.Opts) + len(p.Payload)
	case ProtoUDP:
		return ipHeader + 8 + len(p.Payload)
	default:
		return ipHeader + len(p.Payload)
	}
}

// String renders a compact one-line description for traces.
func (p *Packet) String() string {
	if p.IsTCP() {
		return fmt.Sprintf("%v %v seq=%d ack=%d len=%d win=%d",
			p.Tuple, p.Flags, p.Seq, p.Ack, len(p.Payload), p.Window)
	}
	return fmt.Sprintf("%v len=%d", p.Tuple, len(p.Payload))
}
