package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var testTuple = FiveTuple{
	Proto:   ProtoTCP,
	SrcIP:   MakeAddr(10, 0, 0, 1),
	DstIP:   MakeAddr(10, 0, 0, 2),
	SrcPort: 40000,
	DstPort: 80,
}

func TestAddrString(t *testing.T) {
	if s := MakeAddr(192, 168, 1, 20).String(); s != "192.168.1.20" {
		t.Errorf("Addr.String() = %q", s)
	}
}

func TestFiveTupleReverse(t *testing.T) {
	r := testTuple.Reverse()
	if r.SrcIP != testTuple.DstIP || r.DstPort != testTuple.SrcPort {
		t.Errorf("Reverse() = %v", r)
	}
	if r.Reverse() != testTuple {
		t.Error("Reverse is not an involution")
	}
}

func TestFlagsString(t *testing.T) {
	fl := FlagSYN | FlagACK
	if s := fl.String(); s != "SYN|ACK" {
		t.Errorf("String() = %q", s)
	}
	if !fl.Has(FlagSYN) || fl.Has(FlagFIN) {
		t.Error("Has misbehaves")
	}
	if TCPFlags(0).String() != "-" {
		t.Error("empty flags string")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !SeqLT(0xffffff00, 0x10) {
		t.Error("SeqLT across wrap failed")
	}
	if !SeqGT(0x10, 0xffffff00) {
		t.Error("SeqGT across wrap failed")
	}
	if SeqAdd(0xffffffff, 2) != 1 {
		t.Errorf("SeqAdd wrap = %d", SeqAdd(0xffffffff, 2))
	}
	if SeqAdd(5, -10) != 0xfffffffb {
		t.Errorf("SeqAdd negative = %d", SeqAdd(5, -10))
	}
	if SeqMax(10, 20) != 20 || SeqMin(10, 20) != 10 {
		t.Error("SeqMax/SeqMin")
	}
	if SeqDiff(10, 25) != 15 || SeqDiff(25, 10) != -15 {
		t.Error("SeqDiff")
	}
}

func TestSeqOrderingProperty(t *testing.T) {
	f := func(a uint32, dRaw int32) bool {
		d := dRaw % (1 << 30) // keep |distance| well inside half the space
		b := SeqAdd(a, int64(d))
		switch {
		case d > 0:
			return SeqLT(a, b) && SeqGT(b, a) && SeqLEQ(a, b) && !SeqGEQ(a, b)
		case d < 0:
			return SeqGT(a, b) && SeqLT(b, a)
		default:
			return SeqLEQ(a, b) && SeqGEQ(a, b) && !SeqLT(a, b)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqEnd(t *testing.T) {
	p := NewTCP(testTuple, FlagSYN, 100, 0, nil)
	if p.SeqEnd() != 101 {
		t.Errorf("SYN SeqEnd = %d, want 101", p.SeqEnd())
	}
	p = NewTCP(testTuple, FlagACK, 100, 0, make([]byte, 10))
	if p.SeqEnd() != 110 {
		t.Errorf("data SeqEnd = %d, want 110", p.SeqEnd())
	}
	p = NewTCP(testTuple, FlagFIN|FlagACK, 100, 0, make([]byte, 5))
	if p.SeqEnd() != 106 {
		t.Errorf("FIN+data SeqEnd = %d, want 106", p.SeqEnd())
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewTCP(testTuple, FlagACK, 1, 2, []byte{1, 2, 3})
	p.Opts.SACK = []SACKBlock{{10, 20}}
	p.Opts.TS = &Timestamp{Val: 5, Ecr: 6}
	c := p.Clone()
	c.Payload[0] = 99
	c.Opts.SACK[0].Start = 999
	c.Opts.TS.Val = 999
	if p.Payload[0] != 1 || p.Opts.SACK[0].Start != 10 || p.Opts.TS.Val != 5 {
		t.Error("Clone shares state with original")
	}
}

func TestChecksumRFC1071Vector(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLengthAndChunking(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5}
	whole := Checksum(data)
	split := Checksum(data[:1], data[1:3], data[3:])
	if whole != split {
		t.Errorf("chunked checksum %#04x != whole %#04x", split, whole)
	}
}

func TestSerializeParseRoundTripSYN(t *testing.T) {
	// Realistic SYN option set: MSS, window scale, SACK-permitted,
	// timestamps, Dysco tag (inside a middlebox host).
	p := NewTCP(testTuple, FlagSYN|FlagACK, 12345, 67890, []byte("hello dysco"))
	p.Opts.MSS = 1460
	p.Opts.WScale = 7
	p.Opts.SACKPermitted = true
	p.Opts.TS = &Timestamp{Val: 111, Ecr: 222}
	p.Opts.HasDyscoTag = true
	p.Opts.DyscoTag = 0xdeadbeef
	p.Window = 65535

	wire := p.Serialize()
	q, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Tuple != p.Tuple || q.Seq != p.Seq || q.Ack != p.Ack || q.Flags != p.Flags || q.Window != p.Window {
		t.Errorf("header mismatch: %+v vs %+v", q, p)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Errorf("payload mismatch")
	}
	if q.Opts.MSS != 1460 || q.Opts.WScale != 7 || !q.Opts.SACKPermitted {
		t.Errorf("options mismatch: %+v", q.Opts)
	}
	if q.Opts.TS == nil || *q.Opts.TS != (Timestamp{111, 222}) {
		t.Errorf("TS mismatch: %v", q.Opts.TS)
	}
	if !q.Opts.HasDyscoTag || q.Opts.DyscoTag != 0xdeadbeef {
		t.Errorf("Dysco tag mismatch: %+v", q.Opts)
	}
}

func TestSerializeParseRoundTripDataWithSACK(t *testing.T) {
	// Realistic data-packet option set: timestamps + SACK blocks.
	p := NewTCP(testTuple, FlagACK, 500, 600, nil)
	p.Opts.TS = &Timestamp{Val: 9, Ecr: 8}
	p.Opts.SACK = []SACKBlock{{100, 200}, {300, 400}, {500, 600}}
	q, err := Parse(p.Serialize())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Opts.SACK) != 3 || q.Opts.SACK[1] != (SACKBlock{300, 400}) {
		t.Errorf("SACK mismatch: %v", q.Opts.SACK)
	}
}

func TestSACKBlocksTrimmedToHeaderLimit(t *testing.T) {
	// TCP headers max out at 60 bytes; with every other option present only
	// one SACK block fits, and serialization must trim rather than emit an
	// unparseable data offset.
	p := NewTCP(testTuple, FlagACK, 1, 2, nil)
	p.Opts.MSS = 1460
	p.Opts.WScale = 7
	p.Opts.SACKPermitted = true
	p.Opts.TS = &Timestamp{}
	p.Opts.HasDyscoTag = true
	p.Opts.SACK = []SACKBlock{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	wire := p.Serialize()
	if len(wire) > 20+60 {
		t.Fatalf("TCP header overflow: wire = %d bytes", len(wire))
	}
	q, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Opts.SACK) != 1 || q.Opts.SACK[0] != (SACKBlock{1, 2}) {
		t.Errorf("trimmed SACK = %v, want first block only", q.Opts.SACK)
	}
}

func TestSerializeParseRoundTripUDP(t *testing.T) {
	tup := testTuple
	tup.Proto = ProtoUDP
	p := NewUDP(tup, []byte("control"))
	q, err := Parse(p.Serialize())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Tuple != tup || !bytes.Equal(q.Payload, []byte("control")) {
		t.Errorf("UDP round trip mismatch: %+v", q)
	}
}

func TestParseDetectsCorruption(t *testing.T) {
	p := NewTCP(testTuple, FlagACK, 1, 2, []byte("payload"))
	wire := p.Serialize()
	wire[len(wire)-1] ^= 0xff
	if _, err := Parse(wire); err == nil {
		t.Error("Parse accepted corrupted payload")
	}
}

func TestParseShortInput(t *testing.T) {
	if _, err := Parse([]byte{0x45, 0}); err == nil {
		t.Error("Parse accepted truncated header")
	}
}

func TestRewriteTupleKeepsChecksumValid(t *testing.T) {
	p := NewTCP(testTuple, FlagACK|FlagPSH, 5000, 6000, []byte("data data data"))
	p.Serialize() // fill Checksum
	nt := FiveTuple{
		SrcIP: MakeAddr(172, 16, 0, 9), DstIP: MakeAddr(172, 16, 0, 10),
		SrcPort: 1111, DstPort: 2222,
	}
	p.RewriteTuple(nt)
	// Re-serializing computes the checksum from scratch; the incrementally
	// updated one must match.
	want := p.Checksum
	p.Serialize()
	if p.Checksum != want {
		t.Errorf("incremental checksum %#04x != recomputed %#04x", want, p.Checksum)
	}
	if p.Tuple.Proto != ProtoTCP {
		t.Error("RewriteTuple clobbered protocol")
	}
}

func TestRewriteSeqAckKeepsChecksumValid(t *testing.T) {
	p := NewTCP(testTuple, FlagACK, 5000, 6000, []byte("xyz"))
	p.Serialize()
	p.RewriteSeqAck(123456789, 987654321)
	want := p.Checksum
	p.Serialize()
	if p.Checksum != want {
		t.Errorf("incremental checksum %#04x != recomputed %#04x", want, p.Checksum)
	}
}

// Property: incremental update equals recomputation for random field changes.
func TestIncrementalChecksumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		payload := make([]byte, rng.Intn(64))
		rng.Read(payload)
		p := NewTCP(testTuple, FlagACK, rng.Uint32(), rng.Uint32(), payload)
		p.Serialize()
		nt := FiveTuple{
			SrcIP:   Addr(rng.Uint32()),
			DstIP:   Addr(rng.Uint32()),
			SrcPort: Port(rng.Uint32()),
			DstPort: Port(rng.Uint32()),
		}
		p.RewriteTuple(nt)
		p.RewriteSeqAck(rng.Uint32(), rng.Uint32())
		incr := p.Checksum
		p.Serialize()
		if incr != p.Checksum {
			t.Fatalf("iteration %d: incremental %#04x != full %#04x", i, incr, p.Checksum)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	p := NewTCP(testTuple, FlagACK, 0, 0, make([]byte, 100))
	if p.Size() != 20+20+100 {
		t.Errorf("plain TCP Size = %d, want 140", p.Size())
	}
	p.Opts.TS = &Timestamp{}
	// 10 bytes of TS pad to 12.
	if p.Size() != 20+32+100 {
		t.Errorf("TS TCP Size = %d, want 152", p.Size())
	}
	u := NewUDP(testTuple, make([]byte, 50))
	if u.Size() != 20+8+50 {
		t.Errorf("UDP Size = %d, want 78", u.Size())
	}
}

func TestWireSizeMatchesSize(t *testing.T) {
	p := NewTCP(testTuple, FlagSYN, 1, 0, []byte("abc"))
	p.Opts.MSS = 1460
	p.Opts.WScale = 7
	p.Opts.SACKPermitted = true
	if got := len(p.Serialize()); got != p.Size() {
		t.Errorf("wire length %d != Size() %d", got, p.Size())
	}
}

func BenchmarkSerializeTCP(b *testing.B) {
	p := NewTCP(testTuple, FlagACK, 1, 2, make([]byte, 1400))
	p.Opts.TS = &Timestamp{1, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Serialize()
	}
}

func BenchmarkRewriteTupleIncremental(b *testing.B) {
	p := NewTCP(testTuple, FlagACK, 1, 2, make([]byte, 1400))
	p.Serialize()
	nt := testTuple
	nt.SrcPort = 9999
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RewriteTuple(nt)
	}
}

func BenchmarkChecksumFull1400(b *testing.B) {
	data := make([]byte, 1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}

// Property: Parse never panics and never misinterprets random garbage as a
// valid packet (the checksum gate).
func TestParseRandomGarbageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(120))
		rng.Read(b)
		p, err := Parse(b)
		if err == nil && p != nil && len(b) >= 28 {
			// Astronomically unlikely: a random buffer with a valid
			// checksum. Treat as failure to keep the gate honest.
			t.Fatalf("random garbage parsed as %v", p)
		}
	}
}

// Property: serialize→parse round trip preserves every header field for
// random packets with realistic option sets.
func TestSerializeParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		tup := FiveTuple{
			SrcIP: Addr(rng.Uint32()), DstIP: Addr(rng.Uint32()),
			SrcPort: Port(rng.Uint32()), DstPort: Port(rng.Uint32()),
		}
		var p *Packet
		if rng.Intn(2) == 0 {
			p = NewTCP(tup, TCPFlags(rng.Intn(32)), rng.Uint32(), rng.Uint32(), make([]byte, rng.Intn(64)))
			rng.Read(p.Payload)
			if rng.Intn(2) == 0 {
				p.Opts.TS = &Timestamp{Val: rng.Uint32(), Ecr: rng.Uint32()}
			}
			if rng.Intn(2) == 0 {
				p.Opts.SACK = []SACKBlock{{Start: rng.Uint32(), End: rng.Uint32()}}
			}
			p.Window = uint16(rng.Uint32())
		} else {
			p = NewUDP(tup, make([]byte, rng.Intn(64)))
			rng.Read(p.Payload)
		}
		q, err := Parse(p.Serialize())
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if q.Tuple != p.Tuple || q.Seq != p.Seq || q.Ack != p.Ack ||
			q.Flags != p.Flags || q.Window != p.Window || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("iteration %d: round trip mismatch", i)
		}
	}
}
