package packet

import "errors"

// Wire-format offsets, the single source of truth for the raw fast path.
// IP offsets are absolute frame offsets; TCP/UDP offsets are relative to
// the transport header (frame offset IPHeaderLen + OffTCP*/OffUDP*).
// They mirror what serializeIP/appendTCP/appendUDP lay down and what
// parseIP/parseTCP/parseUDP read back — a lint-package test pins each
// constant to the wiresafe-extracted layout tables, so a codec change
// that moves a field fails that pin, not just the golden.
const (
	// IPv4 header (fixed 20 bytes, IHL always 5 in this codebase).
	IPHeaderLen   = 20
	OffIPTotalLen = 2
	OffIPTTL      = 8
	OffIPProto    = 9
	OffIPCsum     = 10
	OffIPSrc      = 12
	OffIPDst      = 16

	// TCP fixed header (options follow at OffTCPOptions).
	TCPFixedLen   = 20
	OffTCPSrcPort = 0
	OffTCPDstPort = 2
	OffTCPSeq     = 4
	OffTCPAck     = 8
	OffTCPDataOff = 12
	OffTCPFlags   = 13
	OffTCPWindow  = 14
	OffTCPCsum    = 16
	OffTCPOptions = 20

	// UDP header.
	UDPHeaderLen  = 8
	OffUDPSrcPort = 0
	OffUDPDstPort = 2
	OffUDPLen     = 4
	OffUDPCsum    = 6
)

// Sentinel errors keep ParseView allocation-free on the reject path.
var (
	errViewShort   = errors.New("packet: view: truncated frame")
	errViewIPv4    = errors.New("packet: view: not an IPv4/IHL-5 header")
	errViewLen     = errors.New("packet: view: IP total length does not match frame")
	errViewDataOff = errors.New("packet: view: bad TCP data offset")
	errViewUDPLen  = errors.New("packet: view: bad UDP length")
	errViewProto   = errors.New("packet: view: unknown protocol")
	errViewOption  = errors.New("packet: view: bad TCP option")
)

// View is a zero-allocation lazy accessor over one serialized frame: the
// raw-path counterpart of Packet. ParseView validates every bound once up
// front (frame length against the IP total length, the TCP data offset,
// and a full walk of the TCP option region), so the accessors below can
// read and write at the named offset constants without re-checking.
// Mutators store bytes only — checksum maintenance is the caller's job
// (dataplane.RawRule folds every store into the checksums incrementally).
type View struct {
	b    []byte
	hlen int // transport header length: TCP data-offset bytes, UDPHeaderLen for UDP

	// Option geometry precomputed by the ParseView walk (TCP only).
	tsOff   int // absolute offset of the timestamp option kind byte; -1 if absent
	sackOff int // absolute offset of the SACK option kind byte; -1 if absent
	sackN   int // SACK block count
}

// ParseView validates b as one whole serialized frame and returns a view
// over it. It accepts exactly the frames Parse accepts structurally —
// same guards on the IP header, data offset, UDP length, and the same
// TCP option-walk acceptance — but does not verify checksums (the raw
// path preserves checksum validity by construction, folding every store
// into the stored sums) and rejects frames with trailing bytes past the
// IP total length, which Parse tolerates but cannot round-trip. Every
// byte read is dominated by a length guard (wiresafe-proven), and the
// reject path performs no allocation and leaves b untouched.
func ParseView(b []byte) (View, error) {
	v := View{tsOff: -1, sackOff: -1}
	if len(b) < IPHeaderLen {
		return v, errViewShort
	}
	if b[0] != 0x45 {
		return v, errViewIPv4
	}
	total := int(be16(b, OffIPTotalLen))
	if total != len(b) {
		return v, errViewLen
	}
	t := b[IPHeaderLen:]
	switch Proto(b[OffIPProto]) {
	case ProtoTCP:
		if len(t) < TCPFixedLen {
			return v, errViewShort
		}
		hlen := int(t[OffTCPDataOff]>>4) * 4
		if hlen < TCPFixedLen || hlen > len(t) {
			return v, errViewDataOff
		}
		tsOff, sackOff, sackN, err := parseViewOptions(t[OffTCPOptions:hlen])
		if err != nil {
			return v, err
		}
		v.hlen = hlen
		if tsOff >= 0 {
			v.tsOff = IPHeaderLen + OffTCPOptions + tsOff
		}
		if sackOff >= 0 {
			v.sackOff = IPHeaderLen + OffTCPOptions + sackOff
			v.sackN = sackN
		}
	case ProtoUDP:
		if len(t) < UDPHeaderLen {
			return v, errViewShort
		}
		if int(be16(t, OffUDPLen)) != len(t) {
			return v, errViewUDPLen
		}
		v.hlen = UDPHeaderLen
	default:
		return v, errViewProto
	}
	v.b = b
	return v, nil
}

// parseViewOptions walks the TCP option region exactly as parseOptions
// does — END stops, NOP advances one byte, everything else needs a sane
// length byte, and the per-kind body sizes must match — but instead of
// materializing Options it records where the rewritable options sit:
// the timestamp and SACK option kind-byte offsets (relative to b) and
// the SACK block count. A region parseOptions rejects is rejected here
// with the same cut, so the raw and struct paths agree on which frames
// are malformed.
func parseViewOptions(b []byte) (tsOff, sackOff, sackN int, err error) {
	tsOff, sackOff = -1, -1
	off := 0
	for len(b) > 0 {
		kind := b[0]
		switch kind {
		case optEnd:
			return tsOff, sackOff, sackN, nil
		case optNOP:
			b = b[1:]
			off++
			continue
		}
		if len(b) < 2 {
			return -1, -1, 0, errViewOption
		}
		length := int(b[1])
		if length < 2 || length > len(b) {
			return -1, -1, 0, errViewOption
		}
		// Per-kind body sizes live in a helper so the bounds prover keeps
		// one uniform fact for length (its drop-on-differ join would lose
		// `length >= 2` if the arms refined length to different constants).
		if !viewOptionSane(kind, length) {
			return -1, -1, 0, errViewOption
		}
		switch kind {
		case optSACK:
			sackOff = off
			sackN = (length - 2) / 8
		case optTimestamp:
			tsOff = off
		}
		b = b[length:]
		off += length
	}
	return tsOff, sackOff, sackN, nil
}

// viewOptionSane mirrors parseOptions' per-kind body-size checks: MSS is
// 4 bytes on the wire, window scale 3, timestamp 10, the Dysco tag 6,
// and SACK data a multiple of 8. Unknown kinds are skipped wholesale.
func viewOptionSane(kind byte, length int) bool {
	switch kind {
	case optMSS:
		return length == 4
	case optWScale:
		return length == 3
	case optSACK:
		return (length-2)%8 == 0
	case optTimestamp:
		return length == 10
	case OptDyscoTag:
		return length == 6
	}
	return true
}

// Bytes returns the underlying frame (aliased, not copied).
func (v *View) Bytes() []byte { return v.b }

// Len returns the frame length.
func (v *View) Len() int { return len(v.b) }

// Proto returns the IP protocol.
func (v *View) Proto() Proto { return Proto(v.b[OffIPProto]) }

// IsTCP reports whether the frame carries TCP.
func (v *View) IsTCP() bool { return v.b[OffIPProto] == byte(ProtoTCP) }

// Tuple assembles the five-tuple from the header bytes.
func (v *View) Tuple() FiveTuple {
	return FiveTuple{
		Proto:   v.Proto(),
		SrcIP:   v.SrcIP(),
		DstIP:   v.DstIP(),
		SrcPort: v.SrcPort(),
		DstPort: v.DstPort(),
	}
}

// SrcIP returns the IP source address.
func (v *View) SrcIP() Addr { return Addr(be32(v.b, OffIPSrc)) }

// DstIP returns the IP destination address.
func (v *View) DstIP() Addr { return Addr(be32(v.b, OffIPDst)) }

// SetSrcIP stores the IP source address (bytes only; no checksum upkeep).
func (v *View) SetSrcIP(a Addr) { putBE32(v.b, OffIPSrc, uint32(a)) }

// SetDstIP stores the IP destination address.
func (v *View) SetDstIP(a Addr) { putBE32(v.b, OffIPDst, uint32(a)) }

// TTL returns the IP time-to-live.
func (v *View) TTL() uint8 { return v.b[OffIPTTL] }

// IPChecksum returns the stored IP header checksum.
func (v *View) IPChecksum() uint16 { return be16(v.b, OffIPCsum) }

// SetIPChecksum stores the IP header checksum.
func (v *View) SetIPChecksum(c uint16) { putBE16(v.b, OffIPCsum, c) }

// SrcPort returns the transport source port (same offset for TCP and UDP).
func (v *View) SrcPort() Port {
	return Port(be16(v.b, IPHeaderLen+OffTCPSrcPort))
}

// DstPort returns the transport destination port.
func (v *View) DstPort() Port {
	return Port(be16(v.b, IPHeaderLen+OffTCPDstPort))
}

// SetSrcPort stores the transport source port.
func (v *View) SetSrcPort(p Port) {
	putBE16(v.b, IPHeaderLen+OffTCPSrcPort, uint16(p))
}

// SetDstPort stores the transport destination port.
func (v *View) SetDstPort(p Port) {
	putBE16(v.b, IPHeaderLen+OffTCPDstPort, uint16(p))
}

// Seq returns the TCP sequence number. TCP frames only.
func (v *View) Seq() uint32 { return be32(v.b, IPHeaderLen+OffTCPSeq) }

// SetSeq stores the TCP sequence number.
func (v *View) SetSeq(s uint32) { putBE32(v.b, IPHeaderLen+OffTCPSeq, s) }

// Ack returns the TCP acknowledgment number.
func (v *View) Ack() uint32 { return be32(v.b, IPHeaderLen+OffTCPAck) }

// SetAck stores the TCP acknowledgment number.
func (v *View) SetAck(a uint32) { putBE32(v.b, IPHeaderLen+OffTCPAck, a) }

// Flags returns the TCP flags byte.
func (v *View) Flags() TCPFlags { return TCPFlags(v.b[IPHeaderLen+OffTCPFlags]) }

// Window returns the TCP advertised window.
func (v *View) Window() uint16 { return be16(v.b, IPHeaderLen+OffTCPWindow) }

// SetWindow stores the TCP advertised window.
func (v *View) SetWindow(w uint16) {
	putBE16(v.b, IPHeaderLen+OffTCPWindow, w)
}

// TransportChecksum returns the stored TCP or UDP checksum.
func (v *View) TransportChecksum() uint16 {
	if v.IsTCP() {
		return be16(v.b, IPHeaderLen+OffTCPCsum)
	}
	return be16(v.b, IPHeaderLen+OffUDPCsum)
}

// SetTransportChecksum stores the TCP or UDP checksum.
func (v *View) SetTransportChecksum(c uint16) {
	if v.IsTCP() {
		putBE16(v.b, IPHeaderLen+OffTCPCsum, c)
		return
	}
	putBE16(v.b, IPHeaderLen+OffUDPCsum, c)
}

// HasTS reports whether the frame carries a TCP timestamp option.
func (v *View) HasTS() bool { return v.tsOff >= 0 }

// TSVal returns the timestamp option's TSval. Only valid when HasTS.
func (v *View) TSVal() uint32 { return be32(v.b, v.tsOff+2) }

// SetTSVal stores the timestamp option's TSval.
func (v *View) SetTSVal(ts uint32) { putBE32(v.b, v.tsOff+2, ts) }

// TSEcr returns the timestamp option's TSecr. Only valid when HasTS.
func (v *View) TSEcr() uint32 { return be32(v.b, v.tsOff+6) }

// SetTSEcr stores the timestamp option's TSecr.
func (v *View) SetTSEcr(ts uint32) { putBE32(v.b, v.tsOff+6, ts) }

// SACKCount returns the number of SACK blocks (0 when the option is absent).
func (v *View) SACKCount() int { return v.sackN }

// SACKStart returns block i's left edge. i must be < SACKCount.
func (v *View) SACKStart(i int) uint32 {
	return be32(v.b, v.sackOff+2+8*i)
}

// SACKEnd returns block i's right edge.
func (v *View) SACKEnd(i int) uint32 {
	return be32(v.b, v.sackOff+6+8*i)
}

// SetSACKStart stores block i's left edge.
func (v *View) SetSACKStart(i int, s uint32) {
	putBE32(v.b, v.sackOff+2+8*i, s)
}

// SetSACKEnd stores block i's right edge.
func (v *View) SetSACKEnd(i int, e uint32) {
	putBE32(v.b, v.sackOff+6+8*i, e)
}

// be16/be32/putBE16/putBE32 are local big-endian codecs: pure index
// arithmetic instead of encoding/binary, so the allocfree/blockfree
// provers can scan the bodies (out-of-module calls are unprovable by
// policy, and ParseView and the accessors above are on the proven
// hot-path region).
func be16(b []byte, off int) uint16 {
	return uint16(b[off])<<8 | uint16(b[off+1])
}

func be32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}

func putBE16(b []byte, off int, x uint16) {
	b[off] = byte(x >> 8)
	b[off+1] = byte(x)
}

func putBE32(b []byte, off int, x uint32) {
	b[off] = byte(x >> 24)
	b[off+1] = byte(x >> 16)
	b[off+2] = byte(x >> 8)
	b[off+3] = byte(x)
}
