package packet

// TCP sequence numbers live in mod-2^32 arithmetic. These helpers implement
// the standard serial-number comparisons (RFC 1982 style): a < b when the
// signed distance from a to b is positive. The paper's exposition assumes
// no wraparound; the implementation does not.

// SeqLT reports a < b in sequence space.
func SeqLT(a, b uint32) bool { return int32(a-b) < 0 }

// SeqLEQ reports a <= b in sequence space.
func SeqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// SeqGT reports a > b in sequence space.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGEQ reports a >= b in sequence space.
func SeqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// SeqMax returns the later of a and b in sequence space.
func SeqMax(a, b uint32) uint32 {
	if SeqGT(a, b) {
		return a
	}
	return b
}

// SeqMin returns the earlier of a and b in sequence space.
func SeqMin(a, b uint32) uint32 {
	if SeqLT(a, b) {
		return a
	}
	return b
}

// SeqAdd advances s by n bytes (n may be negative: a delta, per §3.4).
func SeqAdd(s uint32, n int64) uint32 { return uint32(int64(s) + n) }

// SeqDiff returns the signed distance b−a in sequence space.
func SeqDiff(a, b uint32) int32 { return int32(b - a) }
