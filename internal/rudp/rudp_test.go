package rudp_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rudp"
	"repro/internal/sim"
)

type pair struct {
	eng    *sim.Engine
	ha, hb *netsim.Host
	ea, eb *rudp.Endpoint
}

func newPair(t *testing.T, cfg netsim.LinkConfig, seed int64) *pair {
	t.Helper()
	eng := sim.NewEngine(seed)
	n := netsim.New(eng)
	ha := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	hb := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(ha, hb, cfg)
	n.ComputeRoutes()
	return &pair{
		eng: eng, ha: ha, hb: hb,
		ea: rudp.NewEndpoint(ha, 7000, rudp.Config{}),
		eb: rudp.NewEndpoint(hb, 7000, rudp.Config{}),
	}
}

func TestInOrderDelivery(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	var got []string
	p.eb.OnConn = func(c *rudp.Conn) {
		c.OnMessage = func(b []byte) { got = append(got, string(b)) }
	}
	c := p.ea.Dial(p.hb.Addr, 7000)
	for i := 0; i < 20; i++ {
		c.Send([]byte(fmt.Sprintf("msg-%02d", i)))
	}
	p.eng.Run(time.Second)
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	for i, m := range got {
		if m != fmt.Sprintf("msg-%02d", i) {
			t.Fatalf("out of order at %d: %q", i, m)
		}
	}
}

func TestReliabilityUnderHeavyLoss(t *testing.T) {
	eng := sim.NewEngine(7)
	n := netsim.New(eng)
	ha := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	hb := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(ha, hb, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 0.4})
	n.ComputeRoutes()
	// 40% loss on data AND acks makes each attempt fail with p≈0.64, so a
	// deep retry budget is needed for reliable delivery.
	ea := rudp.NewEndpoint(ha, 7000, rudp.Config{MaxRetries: 20})
	eb := rudp.NewEndpoint(hb, 7000, rudp.Config{})
	p := &pair{eng: eng, ha: ha, hb: hb, ea: ea, eb: eb}
	var got []string
	p.eb.OnConn = func(c *rudp.Conn) {
		c.OnMessage = func(b []byte) { got = append(got, string(b)) }
	}
	c := p.ea.Dial(p.hb.Addr, 7000)
	const total = 100
	for i := 0; i < total; i++ {
		c.Send([]byte(fmt.Sprintf("m%03d", i)))
	}
	p.eng.Run(600 * time.Second)
	if len(got) != total {
		t.Fatalf("delivered %d of %d under 40%% loss (retx=%d)", len(got), total, c.Retransmits)
	}
	for i, m := range got {
		if m != fmt.Sprintf("m%03d", i) {
			t.Fatalf("order violated at %d: %q", i, m)
		}
	}
	if c.Retransmits == 0 {
		t.Error("no retransmissions under 40% loss")
	}
	if c.Dead() {
		t.Error("connection died despite eventual delivery")
	}
}

func TestExactlyOnceUnderAckLoss(t *testing.T) {
	// Drop only acks (b→a): every data message is delivered first try but
	// retransmitted; the receiver must suppress the duplicates.
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, 3)
	drop := true
	p.hb.AddEgressHook(func(pk *packet.Packet, dir netsim.Direction) netsim.Verdict {
		if drop && pk.IsUDP() && p.eng.Rand().Float64() < 0.7 {
			return netsim.Drop
		}
		return netsim.Pass
	})
	count := map[string]int{}
	p.eb.OnConn = func(c *rudp.Conn) {
		c.OnMessage = func(b []byte) { count[string(b)]++ }
	}
	c := p.ea.Dial(p.hb.Addr, 7000)
	for i := 0; i < 30; i++ {
		c.Send([]byte(fmt.Sprintf("x%d", i)))
	}
	p.eng.Run(30 * time.Second)
	for k, v := range count {
		if v != 1 {
			t.Fatalf("message %q delivered %d times", k, v)
		}
	}
	if len(count) != 30 {
		t.Fatalf("delivered %d of 30", len(count))
	}
	if dup := dialBack(p).Duplicates; dup == 0 {
		t.Log("note: no duplicates observed (lucky seed)")
	}
}

func dialBack(p *pair) *rudp.Conn { return p.eb.Dial(p.ha.Addr, 7000) }

func TestDeadConnectionAfterRetriesExhausted(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond, LossProb: 1.0}, 1)
	dead := false
	c := p.ea.Dial(p.hb.Addr, 7000)
	c.OnDead = func() { dead = true }
	c.Send([]byte("into the void"))
	p.eng.Run(120 * time.Second)
	if !dead || !c.Dead() {
		t.Fatal("connection did not die on a black-holed link")
	}
	if err := c.Send([]byte("more")); err == nil {
		t.Error("Send on dead connection did not error")
	}
}

func TestWindowBoundsOutstanding(t *testing.T) {
	eng := sim.NewEngine(1)
	n := netsim.New(eng)
	ha := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	hb := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(ha, hb, netsim.LinkConfig{Delay: 10 * time.Millisecond})
	n.ComputeRoutes()
	ea := rudp.NewEndpoint(ha, 7000, rudp.Config{Window: 4})
	eb := rudp.NewEndpoint(hb, 7000, rudp.Config{})
	got := 0
	eb.OnConn = func(c *rudp.Conn) {
		c.OnMessage = func(b []byte) { got++ }
	}
	c := ea.Dial(hb.Addr, 7000)
	for i := 0; i < 50; i++ {
		c.Send([]byte{byte(i)})
	}
	// After one RTT at most Window messages can have arrived.
	eng.Run(25 * time.Millisecond)
	if got > 8 {
		t.Errorf("window not enforced: %d delivered in ~1 RTT", got)
	}
	eng.Run(5 * time.Second)
	if got != 50 {
		t.Fatalf("delivered %d of 50", got)
	}
}

func TestBidirectional(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, 2)
	var atB, atA []string
	p.eb.OnConn = func(c *rudp.Conn) {
		c.OnMessage = func(b []byte) {
			atB = append(atB, string(b))
			c.Send([]byte("re:" + string(b))) // reply on the same conn
		}
	}
	ca := p.ea.Dial(p.hb.Addr, 7000)
	ca.OnMessage = func(b []byte) { atA = append(atA, string(b)) }
	ca.Send([]byte("ping"))
	p.eng.Run(time.Second)
	if len(atB) != 1 || atB[0] != "ping" {
		t.Fatalf("b got %v", atB)
	}
	if len(atA) != 1 || atA[0] != "re:ping" {
		t.Fatalf("a got %v", atA)
	}
}

func TestGarbageIgnored(t *testing.T) {
	p := newPair(t, netsim.LinkConfig{Delay: time.Millisecond}, 1)
	delivered := 0
	p.eb.OnConn = func(c *rudp.Conn) {
		c.OnMessage = func(b []byte) { delivered++ }
	}
	// Raw UDP garbage to the endpoint's port.
	g := packet.NewUDP(packet.FiveTuple{
		SrcIP: p.ha.Addr, DstIP: p.hb.Addr, SrcPort: 9, DstPort: 7000,
	}, []byte("not rudp"))
	p.ha.Send(g)
	p.eng.Run(time.Second)
	if delivered != 0 {
		t.Error("garbage delivered as a message")
	}
}

func BenchmarkThroughput(b *testing.B) {
	eng := sim.NewEngine(1)
	n := netsim.New(eng)
	ha := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	hb := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(ha, hb, netsim.LinkConfig{Delay: time.Millisecond})
	n.ComputeRoutes()
	ea := rudp.NewEndpoint(ha, 7000, rudp.Config{Window: 128})
	eb := rudp.NewEndpoint(hb, 7000, rudp.Config{})
	got := 0
	eb.OnConn = func(c *rudp.Conn) {
		c.OnMessage = func(m []byte) { got += len(m) }
	}
	c := ea.Dial(hb.Addr, 7000)
	msg := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Send(msg)
		if i%64 == 0 {
			eng.Run(eng.Now() + 10*time.Millisecond)
		}
	}
	eng.Run(eng.Now() + time.Second)
	b.SetBytes(512)
}
