package rudp_test

// Fault-plan-driven tests: instead of hand-rolled drop closures these use
// internal/fault plans, so the reliable-datagram layer is exercised by
// the same declarative fault vocabulary as the end-to-end safety
// harness.

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/rudp"
	"repro/internal/sim"
)

// faultedPair is two rudp endpoints separated by a forwarding router, so
// each host has its own access link the fault injector can target (and
// the client's link stays free for the test's own recording hook).
type faultedPair struct {
	eng    *sim.Engine
	net    *netsim.Network
	ha, hb *netsim.Host
	router *netsim.Host
	ea, eb *rudp.Endpoint
}

func newFaultedPair(cfg rudp.Config, seed int64) *faultedPair {
	eng := sim.NewEngine(seed)
	n := netsim.New(eng)
	ha := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	hb := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	router := n.AddHost("r", packet.MakeAddr(10, 0, 0, 254))
	router.Forwarding = true
	link := netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Gbps(1)}
	n.Connect(ha, router, link)
	n.Connect(hb, router, link)
	n.ComputeRoutes()
	return &faultedPair{
		eng: eng, net: n, ha: ha, hb: hb, router: router,
		ea: rudp.NewEndpoint(ha, 7000, cfg),
		eb: rudp.NewEndpoint(hb, 7000, cfg),
	}
}

// TestBackoffGrowthAndCap drives an ack blackhole from a fault plan
// (every datagram the server sends is lost) and asserts the sender's
// retransmission gaps double per attempt and stop growing at the
// RTO<<10 cap, then the connection is declared dead once MaxRetries is
// exhausted.
func TestBackoffGrowthAndCap(t *testing.T) {
	const rto = 200 * time.Microsecond
	p := newFaultedPair(rudp.Config{RTO: rto, MaxRetries: 13}, 11)

	plan := fault.Plan{Name: "ack-blackhole", Ops: []fault.Op{
		{Kind: fault.OpLinkLoss, Host: "server", Dir: "out", Prob: 1, At: 0, For: 2 * time.Second},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	fault.NewInjector(p.eng, p.net, nil, 11, plan, map[string]fault.Target{
		"server": {Host: p.hb, Via: p.router.Addr},
	})

	// Record every data-frame transmission time on the client's own
	// access link (untouched by the injector, which only owns the
	// server's link ends).
	var sendTimes []sim.Time
	p.ha.LinkTo(p.router.Addr).SetFault(func(pkt *packet.Packet) netsim.FaultDecision {
		if pkt.IsUDP() && len(pkt.Payload) > 2 && pkt.Payload[2] == 1 { // kindData
			sendTimes = append(sendTimes, p.eng.Now())
		}
		return netsim.FaultDecision{}
	})

	conn := p.ea.Dial(p.hb.Addr, 7000)
	dead := false
	conn.OnDead = func() { dead = true }
	if err := conn.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	p.eng.Run(2 * time.Second)

	if !dead {
		t.Fatal("connection survived a 2 s ack blackhole with MaxRetries=13")
	}
	// 1 original + 13 retransmissions.
	if len(sendTimes) != 14 {
		t.Fatalf("observed %d transmissions, want 14", len(sendTimes))
	}
	var gaps []sim.Time
	for i := 1; i < len(sendTimes); i++ {
		gaps = append(gaps, sendTimes[i]-sendTimes[i-1])
	}
	// Gaps follow RTO<<min(attempt,10): exponential growth, then capped.
	for i, g := range gaps {
		shift := i
		if shift > 10 {
			shift = 10
		}
		want := rto * sim.Time(1<<uint(shift))
		if g != want {
			t.Errorf("gap %d = %v, want %v", i, g, want)
		}
	}
	if gaps[len(gaps)-1] != gaps[len(gaps)-2] {
		t.Errorf("backoff did not cap: last gaps %v, %v", gaps[len(gaps)-2], gaps[len(gaps)-1])
	}
}

// TestExactlyOnceUnderFaultPlan runs a sustained loss + duplication +
// reordering plan on both access links and asserts the layer still
// delivers every message exactly once, in order — with the duplicate
// suppression and retransmission paths demonstrably exercised.
func TestExactlyOnceUnderFaultPlan(t *testing.T) {
	p := newFaultedPair(rudp.Config{RTO: 2 * time.Millisecond}, 23)

	plan := fault.Plan{Name: "loss-dup-reorder", Ops: []fault.Op{
		{Kind: fault.OpLinkLoss, Host: "client", Prob: 0.2, At: 0, For: 3 * time.Second},
		{Kind: fault.OpLinkDup, Host: "client", Prob: 0.2, At: 0, For: 3 * time.Second},
		{Kind: fault.OpLinkReorder, Host: "client", Prob: 0.3, Delay: 300 * time.Microsecond, At: 0, For: 3 * time.Second},
		{Kind: fault.OpLinkLoss, Host: "server", Prob: 0.2, At: 0, For: 3 * time.Second},
		{Kind: fault.OpLinkDup, Host: "server", Prob: 0.2, At: 0, For: 3 * time.Second},
		{Kind: fault.OpLinkReorder, Host: "server", Prob: 0.3, Delay: 300 * time.Microsecond, At: 0, For: 3 * time.Second},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	fault.NewInjector(p.eng, p.net, nil, 23, plan, map[string]fault.Target{
		"client": {Host: p.ha, Via: p.router.Addr},
		"server": {Host: p.hb, Via: p.router.Addr},
	})

	var got []int
	var srv *rudp.Conn
	p.eb.OnConn = func(c *rudp.Conn) {
		srv = c
		c.OnMessage = func(msg []byte) { got = append(got, int(msg[0])<<8|int(msg[1])) }
	}

	const n = 300
	conn := p.ea.Dial(p.hb.Addr, 7000)
	for i := 0; i < n; i++ {
		if err := conn.Send([]byte{byte(i >> 8), byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.eng.Run(10 * time.Second)

	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d delivered out of order (got id %d)", i, v)
		}
	}
	if conn.Retransmits == 0 {
		t.Error("plan injected 20% loss but the sender never retransmitted")
	}
	if srv == nil || srv.Duplicates == 0 {
		t.Error("plan injected duplication but the receiver suppressed no duplicates")
	}
}
