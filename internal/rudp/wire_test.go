package rudp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// testEndpoint builds a two-host network and binds an endpoint on the
// first host, so frames injected into input can be acked over a real link.
func testEndpoint(tb testing.TB) (*sim.Engine, *Endpoint) {
	tb.Helper()
	eng := sim.NewEngine(1)
	n := netsim.New(eng)
	ha := n.AddHost("a", packet.MakeAddr(10, 0, 0, 1))
	hb := n.AddHost("b", packet.MakeAddr(10, 0, 0, 2))
	n.Connect(ha, hb, netsim.LinkConfig{Delay: time.Millisecond})
	n.ComputeRoutes()
	return eng, NewEndpoint(ha, 7000, Config{})
}

// frameFrom wraps raw frame bytes in the UDP datagram input expects.
func frameFrom(e *Endpoint, b []byte) *packet.Packet {
	return packet.NewUDP(packet.FiveTuple{
		SrcIP: packet.MakeAddr(10, 0, 0, 2), DstIP: e.Host.Addr,
		SrcPort: 9999, DstPort: e.Port,
	}, b)
}

func TestParseFrameRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		kind    byte
		seq     uint32
		payload []byte
	}{
		{kindData, 0, []byte("hello")},
		{kindData, 42, nil}, // zero-length data is a valid frame
		{kindAck, 0xffffffff, nil},
	} {
		b := appendFrame(nil, tc.kind, tc.seq, tc.payload)
		kind, seq, payload, err := parseFrame(b)
		if err != nil {
			t.Fatalf("frame %+v: %v", tc, err)
		}
		if kind != tc.kind || seq != tc.seq || string(payload) != string(tc.payload) {
			t.Errorf("frame %+v round-tripped to kind=%d seq=%d payload=%q", tc, kind, seq, payload)
		}
	}
}

func TestParseFrameRejectsMalformed(t *testing.T) {
	valid := appendFrame(nil, kindData, 7, []byte("x"))
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty", nil, "short frame"},
		{"six bytes", valid[:6], "short frame"},
		{"bad first magic", []byte{0x00, magic1, kindData, 0, 0, 0, 1}, "bad frame magic"},
		{"bad second magic", []byte{magic0, 0x00, kindData, 0, 0, 0, 1}, "bad frame magic"},
		{"kind zero", []byte{magic0, magic1, 0, 0, 0, 0, 1}, "unknown frame kind"},
		{"kind three", []byte{magic0, magic1, 3, 0, 0, 0, 1}, "unknown frame kind"},
	}
	for _, tc := range cases {
		if _, _, _, err := parseFrame(tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want %q", tc.name, err, tc.want)
		}
	}
	// Truncation at every header boundary errors, never panics.
	for i := 0; i < headerLen; i++ {
		if _, _, _, err := parseFrame(valid[:i]); err == nil {
			t.Errorf("parseFrame accepted a %d-byte prefix", i)
		}
	}
}

// TestInputRejectsMalformedBeforeConnState pins the DoS guard: a frame
// that fails parsing must not create per-peer connection state.
func TestInputRejectsMalformedBeforeConnState(t *testing.T) {
	eng, e := testEndpoint(t)
	connected := 0
	e.OnConn = func(*Conn) { connected++ }
	for _, b := range [][]byte{
		nil,
		appendFrame(nil, kindData, 1, []byte("x"))[:6], // short header
		{0x00, magic1, kindData, 0, 0, 0, 1},           // bad magic
		{magic0, magic1, 9, 0, 0, 0, 1},                // unknown kind
	} {
		e.input(frameFrom(e, b))
	}
	eng.Run(time.Second)
	if connected != 0 || len(e.conns) != 0 {
		t.Errorf("malformed frames created state: OnConn=%d conns=%d", connected, len(e.conns))
	}
}

// TestInputZeroLengthData: an empty payload in a well-formed data frame is
// a valid (deliverable) message, not a malformed frame.
func TestInputZeroLengthData(t *testing.T) {
	eng, e := testEndpoint(t)
	var got [][]byte
	e.OnConn = func(c *Conn) {
		c.OnMessage = func(b []byte) { got = append(got, b) }
	}
	e.input(frameFrom(e, appendFrame(nil, kindData, 0, nil)))
	eng.Run(time.Second)
	if len(e.conns) != 1 {
		t.Fatalf("conns = %d, want 1", len(e.conns))
	}
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("delivered %v, want one empty message", got)
	}
}

func FuzzRudpInput(f *testing.F) {
	f.Add(appendFrame(nil, kindData, 0, []byte("hello")))
	f.Add(appendFrame(nil, kindAck, 1, nil))
	f.Add([]byte{magic0, magic1})
	f.Add([]byte{magic0, magic1, 3, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, b []byte) {
		eng, e := testEndpoint(t)
		_, _, _, perr := parseFrame(b)
		e.input(frameFrom(e, b))
		if perr != nil && len(e.conns) != 0 {
			t.Fatalf("unparseable frame created %d conn(s)", len(e.conns))
		}
		eng.Run(100 * time.Millisecond)
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus. Run with
// WRITE_FUZZ_CORPUS=1 after a wire-format change.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("corpus generator; set WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz seeds")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzRudpInput")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string][]byte{
		"data_with_payload": appendFrame(nil, kindData, 0, []byte("hello")),
		"data_empty":        appendFrame(nil, kindData, 42, nil),
		"ack":               appendFrame(nil, kindAck, 7, nil),
		"short_header":      {magic0, magic1, kindData},
		"bad_magic":         {0x00, 0x00, kindData, 0, 0, 0, 1},
		"unknown_kind":      {magic0, magic1, 9, 0, 0, 0, 1},
	} {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", b)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
