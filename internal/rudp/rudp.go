// Package rudp is a reliable, ordered datagram layer over UDP — the
// counterpart of the prototype's shared "message serialization and
// reliable UDP transmission" library (§4.1), which the Dysco daemon and
// the policy server build their management protocol on.
//
// Each Conn provides exactly-once, in-order delivery of messages to one
// peer: sequence numbers, cumulative-plus-selective acknowledgment,
// retransmission with exponential backoff, duplicate suppression, and
// reordering. An Endpoint demultiplexes many Conns on one UDP port.
package rudp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Wire format: magic(2) kind(1) seq(4) [payload].
const (
	magic0 = 0xd7
	magic1 = 0x5d

	kindData = 1
	kindAck  = 2

	headerLen = 7
)

// appendFrame renders one frame: magic(2) | u8 kind | u32 seq | payload.
func appendFrame(b []byte, kind byte, seq uint32, payload []byte) []byte {
	b = append(b, magic0, magic1, kind)
	b = binary.BigEndian.AppendUint32(b, seq)
	b = append(b, payload...)
	return b
}

// parseFrame decodes a frame written by appendFrame. Frames arrive off
// the wire, so a short header, bad magic, or unknown kind byte is an
// error, never a panic or a silent fall-through (every read is dominated
// by a length guard, proven by the wiresafe lint pass). The returned
// payload aliases b.
func parseFrame(b []byte) (kind byte, seq uint32, payload []byte, err error) {
	if len(b) < headerLen {
		return 0, 0, nil, errors.New("rudp: short frame")
	}
	if b[0] != magic0 || b[1] != magic1 {
		return 0, 0, nil, errors.New("rudp: bad frame magic")
	}
	kind = b[2]
	if kind != kindData && kind != kindAck {
		return 0, 0, nil, fmt.Errorf("rudp: unknown frame kind %d", kind)
	}
	seq = binary.BigEndian.Uint32(b[3:])
	return kind, seq, b[headerLen:], nil
}

// Config tunes a connection.
type Config struct {
	// RTO is the initial retransmission timeout (default 5 ms; the
	// management plane runs on LAN-scale paths).
	RTO sim.Time
	// MaxRetries bounds retransmissions before the connection is declared
	// dead (default 10).
	MaxRetries int
	// Window bounds unacknowledged outstanding messages (default 64).
	Window int
}

func (c *Config) fillDefaults() {
	if c.RTO == 0 {
		c.RTO = 5 * time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10
	}
	if c.Window == 0 {
		c.Window = 64
	}
}

// Endpoint owns a UDP port and demultiplexes reliable connections by peer
// address/port.
type Endpoint struct {
	Host *netsim.Host
	Port packet.Port
	// OnConn announces a connection created by an inbound message. Set it
	// before traffic arrives.
	OnConn func(*Conn)

	cfg   Config
	eng   *sim.Engine
	conns map[peerKey]*Conn
}

type peerKey struct {
	addr packet.Addr
	port packet.Port
}

// NewEndpoint binds a reliable-datagram endpoint on the host/port.
func NewEndpoint(h *netsim.Host, port packet.Port, cfg Config) *Endpoint {
	cfg.fillDefaults()
	e := &Endpoint{
		Host:  h,
		Port:  port,
		cfg:   cfg,
		eng:   h.Net.Eng,
		conns: make(map[peerKey]*Conn),
	}
	h.BindUDP(port, e.input)
	return e
}

// Close unbinds the endpoint and stops every connection's timers.
func (e *Endpoint) Close() {
	e.Host.UnbindUDP(e.Port)
	for _, c := range e.conns {
		c.stopTimers()
	}
}

// Dial returns the (shared) connection to a peer endpoint, creating it if
// needed.
func (e *Endpoint) Dial(addr packet.Addr, port packet.Port) *Conn {
	k := peerKey{addr, port}
	if c, ok := e.conns[k]; ok {
		return c
	}
	c := newConn(e, k)
	e.conns[k] = c
	return c
}

func (e *Endpoint) input(p *packet.Packet) {
	kind, seq, payload, err := parseFrame(p.Payload)
	if err != nil {
		// Not an rudp frame, or malformed: reject before any connection
		// state is created for the peer.
		return
	}
	k := peerKey{p.Tuple.SrcIP, p.Tuple.SrcPort}
	c, ok := e.conns[k]
	if !ok {
		c = newConn(e, k)
		e.conns[k] = c
		if e.OnConn != nil {
			e.OnConn(c)
		}
	}
	switch kind {
	case kindData:
		c.onData(seq, payload)
	case kindAck:
		c.onAck(seq)
	}
}

// Conn is one reliable, ordered message stream to a peer.
type Conn struct {
	ep   *Endpoint
	peer peerKey

	// OnMessage delivers each message exactly once, in order.
	OnMessage func([]byte)
	// OnDead fires when a message exhausts its retries (peer unreachable).
	OnDead func()

	sendSeq  uint32 // next sequence to assign
	ackedTo  uint32 // all below this acknowledged
	unacked  map[uint32]*pendingMsg
	sendQ    []queued // waiting for window space
	recvNext uint32
	recvBuf  map[uint32][]byte
	dead     bool

	// Stats
	Sent        uint64
	Delivered   uint64
	Retransmits uint64
	Duplicates  uint64
}

type queued struct {
	seq     uint32
	payload []byte
}

type pendingMsg struct {
	payload []byte
	timer   *sim.Timer
	retries int
}

func newConn(e *Endpoint, k peerKey) *Conn {
	return &Conn{
		ep:      e,
		peer:    k,
		unacked: make(map[uint32]*pendingMsg),
		recvBuf: make(map[uint32][]byte),
	}
}

// Peer returns the remote address and port.
func (c *Conn) Peer() (packet.Addr, packet.Port) { return c.peer.addr, c.peer.port }

// Dead reports whether the connection gave up on an unacknowledged
// message.
func (c *Conn) Dead() bool { return c.dead }

// Send queues one message for reliable in-order delivery.
func (c *Conn) Send(msg []byte) error {
	if c.dead {
		return errors.New("rudp: connection is dead")
	}
	seq := c.sendSeq
	c.sendSeq++
	if len(c.unacked) >= c.ep.cfg.Window {
		c.sendQ = append(c.sendQ, queued{seq, msg})
		return nil
	}
	c.transmit(seq, msg, 0)
	return nil
}

func (c *Conn) transmit(seq uint32, msg []byte, retries int) {
	pm := &pendingMsg{payload: msg, retries: retries}
	pm.timer = sim.NewTimer(c.ep.eng, func() { c.onTimeout(seq) })
	backoff := c.ep.cfg.RTO * sim.Time(1<<uint(min(retries, 10)))
	pm.timer.Reset(backoff)
	c.unacked[seq] = pm
	c.Sent++
	c.emit(kindData, seq, msg)
}

func (c *Conn) emit(kind byte, seq uint32, payload []byte) {
	buf := appendFrame(make([]byte, 0, headerLen+len(payload)), kind, seq, payload)
	p := packet.NewUDP(packet.FiveTuple{
		SrcIP: c.ep.Host.Addr, DstIP: c.peer.addr,
		SrcPort: c.ep.Port, DstPort: c.peer.port,
	}, buf)
	c.ep.Host.Send(p)
}

func (c *Conn) onTimeout(seq uint32) {
	pm, ok := c.unacked[seq]
	if !ok {
		return
	}
	pm.retries++
	if pm.retries > c.ep.cfg.MaxRetries {
		c.dead = true
		c.stopTimers()
		if c.OnDead != nil {
			c.OnDead()
		}
		return
	}
	c.Retransmits++
	backoff := c.ep.cfg.RTO * sim.Time(1<<uint(min(pm.retries, 10)))
	pm.timer.Reset(backoff)
	c.emit(kindData, seq, pm.payload)
}

func (c *Conn) onAck(seq uint32) {
	if pm, ok := c.unacked[seq]; ok {
		pm.timer.Stop()
		delete(c.unacked, seq)
		// Admit queued messages into the window.
		for len(c.sendQ) > 0 && len(c.unacked) < c.ep.cfg.Window {
			q := c.sendQ[0]
			c.sendQ = c.sendQ[1:]
			c.transmit(q.seq, q.payload, 0)
		}
	}
}

func (c *Conn) onData(seq uint32, payload []byte) {
	// Always (re-)acknowledge: the previous ack may have been lost.
	c.emit(kindAck, seq, nil)
	if packet.SeqLT(seq, c.recvNext) || c.recvBuf[seq] != nil {
		c.Duplicates++
		return
	}
	c.recvBuf[seq] = append([]byte(nil), payload...)
	for {
		msg, ok := c.recvBuf[c.recvNext]
		if !ok {
			return
		}
		delete(c.recvBuf, c.recvNext)
		c.recvNext++
		c.Delivered++
		if c.OnMessage != nil {
			c.OnMessage(msg)
		}
	}
}

func (c *Conn) stopTimers() {
	for _, pm := range c.unacked {
		pm.timer.Stop()
	}
}

// String identifies the connection.
func (c *Conn) String() string {
	return fmt.Sprintf("rudp %v:%d->%v:%d", c.ep.Host.Addr, c.ep.Port, c.peer.addr, c.peer.port)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
