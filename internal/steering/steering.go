// Package steering implements the baseline the paper argues against
// (§1, §7.1): service chaining by a logically centralized controller that
// installs fine-grained forwarding rules in network elements. It exists so
// experiments can compare state growth, controller involvement, and
// five-tuple-modification breakage against Dysco's session-protocol
// approach.
package steering

import (
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/packet"
)

// Switch turns a host into a rule-driven element: packets matching an
// exact five-tuple rule are forwarded to the rule's next hop regardless of
// destination-based routing. Packets without a rule fall through to
// normal processing.
type Switch struct {
	Host  *netsim.Host
	rules map[packet.FiveTuple]packet.Addr
	// Hits and Misses count rule-table lookups. They are atomic so the
	// switch can serve as the single-threaded baseline in the concurrent
	// dataplane's comparison benchmarks, where many driver goroutines
	// call Lookup against a fixed rule set.
	Hits   atomic.Uint64
	Misses atomic.Uint64
}

// Lookup consults the rule table for a packet with the given tuple that
// arrived from the given hop, counting the hit or miss. An in-port match
// (the packet is returning from the hop the rule steers to) counts as a
// miss: the rule's job is done and normal forwarding takes over.
//
// Lookup is safe to call from concurrent readers as long as no
// Install/Remove runs at the same time; the rule map itself is
// deliberately plain (the baseline has no concurrent control plane).
func (sw *Switch) Lookup(tuple packet.FiveTuple, arrivedFrom packet.Addr) (packet.Addr, bool) {
	next, ok := sw.rules[tuple]
	if !ok || arrivedFrom == next {
		sw.Misses.Add(1)
		return 0, false
	}
	sw.Hits.Add(1)
	return next, true
}

// NewSwitch attaches a rule table to a host via an ingress hook.
func NewSwitch(h *netsim.Host) *Switch {
	sw := &Switch{Host: h, rules: make(map[packet.FiveTuple]packet.Addr)}
	h.AddIngressHook(func(p *packet.Packet, dir netsim.Direction) netsim.Verdict {
		if !p.IsTCP() {
			return netsim.Pass
		}
		next, ok := sw.Lookup(p.Tuple, p.ArrivedFrom)
		if !ok {
			return netsim.Pass
		}
		if p.Tuple.DstIP == h.Addr {
			return netsim.Pass
		}
		if p.TTL <= 1 {
			return netsim.Drop
		}
		p.TTL--
		//lint:ignore rewritetaint rule-based steering forwards the original header untouched by design — the resulting breakage under five-tuple-modifying middleboxes is the baseline this package exists to measure (§1)
		h.SendVia(next, p)
		return netsim.Consume
	})
	return sw
}

// Install adds an exact-match rule.
func (sw *Switch) Install(match packet.FiveTuple, nextHop packet.Addr) {
	sw.rules[match] = nextHop
}

// Remove deletes a rule.
func (sw *Switch) Remove(match packet.FiveTuple) { delete(sw.rules, match) }

// Rules returns the number of installed rules — the per-element state the
// paper's introduction complains about.
func (sw *Switch) Rules() int { return len(sw.rules) }

// Controller is the logically centralized rule installer. Unlike the
// Dysco policy server, it must act per session and per switch.
type Controller struct {
	switches []*Switch
	// RulesInstalled counts every installed rule (controller load and
	// network state, the §1 scaling argument).
	RulesInstalled uint64
	// Events counts controller invocations.
	Events uint64
}

// NewController returns an empty controller.
func NewController() *Controller { return &Controller{} }

// AddSwitch registers a switch with the controller.
func (c *Controller) AddSwitch(sw *Switch) { c.switches = append(c.switches, sw) }

// Switches returns the registered switches.
func (c *Controller) Switches() []*Switch { return c.switches }

// switchAt finds the switch on a host address.
func (c *Controller) switchAt(a packet.Addr) *Switch {
	for _, sw := range c.switches {
		if sw.Host.Addr == a {
			return sw
		}
	}
	return nil
}

// InstallChain installs, for one session, the forwarding rules that steer
// its packets through the chain of (switch, middlebox-host) waypoints and
// back — two rules (one per direction) per switch on the path. Returns
// rules installed. The per-session, per-switch cost is the point of the
// comparison: Dysco needs zero network state.
func (c *Controller) InstallChain(session packet.FiveTuple, waypoints []packet.Addr) int {
	c.Events++
	installed := 0
	fwd := session
	rev := session.Reverse()
	for i, wp := range c.pathOf(waypoints, session) {
		sw := c.switchAt(wp.at)
		if sw == nil {
			continue
		}
		sw.Install(fwd, wp.next)
		sw.Install(rev, wp.prev)
		installed += 2
		_ = i
	}
	c.RulesInstalled += uint64(installed)
	return installed
}

// RemoveChain uninstalls a session's rules from every switch.
func (c *Controller) RemoveChain(session packet.FiveTuple) {
	c.Events++
	for _, sw := range c.switches {
		sw.Remove(session)
		sw.Remove(session.Reverse())
	}
}

type hop struct {
	at   packet.Addr // switch
	next packet.Addr // next hop for forward-direction packets
	prev packet.Addr // next hop for reverse-direction packets
}

// pathOf expands waypoints into per-switch next hops: each switch sends
// forward packets toward the first waypoint and reverse packets toward
// the last (the reverse path traverses the chain backwards). The
// controller must know the topology; here every switch is assumed
// adjacent to all waypoints (the star testbed).
func (c *Controller) pathOf(waypoints []packet.Addr, session packet.FiveTuple) []hop {
	if len(c.switches) == 0 {
		return nil
	}
	var hops []hop
	for _, sw := range c.switches {
		next := session.DstIP
		prev := session.SrcIP
		if len(waypoints) > 0 {
			next = waypoints[0]
			prev = waypoints[len(waypoints)-1]
		}
		hops = append(hops, hop{at: sw.Host.Addr, next: next, prev: prev})
	}
	return hops
}

// TotalRules sums installed rules across all switches.
func (c *Controller) TotalRules() int {
	n := 0
	for _, sw := range c.switches {
		n += sw.Rules()
	}
	return n
}
