package steering_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/lab"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/steering"
	"repro/internal/tcp"
)

func link() netsim.LinkConfig {
	return netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Gbps(10)}
}

// TestRuleSteeringThroughMiddlebox verifies the baseline: the router
// becomes a rule-driven switch steering a session's packets through a
// forwarding middlebox host.
func TestRuleSteeringThroughMiddlebox(t *testing.T) {
	env := lab.NewEnv(1)
	client := env.AddNode("client", lab.HostOptions{Link: link(), Stack: true})
	mb := env.AddNode("mb", lab.HostOptions{Link: link()})
	server := env.AddNode("server", lab.HostOptions{Link: link(), Stack: true})
	mb.Host.Forwarding = true // baseline middlebox is a bump in the wire
	env.Net.ComputeRoutes()

	ctl := steering.NewController()
	sw := steering.NewSwitch(env.Router)
	ctl.AddSwitch(sw)

	var got bytes.Buffer
	server.Stack.Listen(80, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { got.Write(b) }
	})
	c := client.Stack.Connect(server.Addr(), 80, tcp.Config{})
	// Controller installs the per-session rules before the SYN flows —
	// the "real-time response from the central controller" of §1.
	n := ctl.InstallChain(c.Tuple(), []packet.Addr{mb.Addr()})
	if n == 0 {
		t.Fatal("no rules installed")
	}
	c.OnEstablished = func() { c.Send([]byte("steered")) }
	env.RunFor(2 * time.Second)

	if got.String() != "steered" {
		t.Fatalf("got %q", got.String())
	}
	if mb.Host.Stats.Forwarded == 0 {
		t.Error("middlebox saw no steered packets")
	}
	if sw.Hits.Load() == 0 {
		t.Error("switch rules never matched")
	}
	if ctl.TotalRules() != 2 {
		t.Errorf("rules = %d, want 2 (one per direction)", ctl.TotalRules())
	}
	ctl.RemoveChain(c.Tuple())
	if ctl.TotalRules() != 0 {
		t.Errorf("rules after removal = %d", ctl.TotalRules())
	}
}

// TestRuleStateGrowsPerSession demonstrates the §1 scaling argument: rule
// state grows with sessions, while Dysco agents keep state only at hosts.
func TestRuleStateGrowsPerSession(t *testing.T) {
	env := lab.NewEnv(2)
	client := env.AddNode("client", lab.HostOptions{Link: link(), Stack: true})
	mb := env.AddNode("mb", lab.HostOptions{Link: link()})
	server := env.AddNode("server", lab.HostOptions{Link: link(), Stack: true})
	mb.Host.Forwarding = true
	env.Net.ComputeRoutes()
	ctl := steering.NewController()
	ctl.AddSwitch(steering.NewSwitch(env.Router))

	const sessions = 50
	for i := 0; i < sessions; i++ {
		tup := packet.FiveTuple{
			Proto: packet.ProtoTCP, SrcIP: client.Addr(), DstIP: server.Addr(),
			SrcPort: packet.Port(10000 + i), DstPort: 80,
		}
		ctl.InstallChain(tup, []packet.Addr{mb.Addr()})
	}
	if ctl.TotalRules() != 2*sessions {
		t.Errorf("rules = %d, want %d", ctl.TotalRules(), 2*sessions)
	}
	if ctl.Events != sessions {
		t.Errorf("controller events = %d, want one per session", ctl.Events)
	}
}

// TestFiveTupleModifierBreaksRules shows the failure mode Dysco's tags
// solve (§1): a middlebox that rewrites the five-tuple makes the
// controller's egress-side rules useless.
func TestFiveTupleModifierBreaksRules(t *testing.T) {
	env := lab.NewEnv(3)
	client := env.AddNode("client", lab.HostOptions{Link: link(), Stack: true})
	server := env.AddNode("server", lab.HostOptions{Link: link(), Stack: true})
	env.Net.ComputeRoutes()
	sw := steering.NewSwitch(env.Router)

	// A rule matching the pre-NAT tuple never matches post-NAT packets.
	pre := packet.FiveTuple{
		Proto: packet.ProtoTCP, SrcIP: client.Addr(), DstIP: server.Addr(),
		SrcPort: 1111, DstPort: 80,
	}
	sw.Install(pre, server.Addr())
	post := pre
	post.SrcIP = packet.MakeAddr(198, 51, 100, 1) // rewritten by a NAT
	post.SrcPort = 30000

	p := packet.NewTCP(post, packet.FlagACK, 1, 1, nil)
	env.Router.InjectLocal(p)
	env.RunFor(time.Millisecond)
	if sw.Hits.Load() != 0 {
		t.Error("rule matched a NATed packet; it must not")
	}
	if sw.Misses.Load() == 0 {
		t.Error("miss not counted")
	}
}

// TestSwitchCountersConcurrentLookups drives Lookup from many goroutines
// against a fixed rule set — the access pattern the dataplane comparison
// benchmarks use — and checks the atomic counters lose no increments.
// Run under -race in CI.
func TestSwitchCountersConcurrentLookups(t *testing.T) {
	env := lab.NewEnv(1)
	sw := steering.NewSwitch(env.Router)
	hit := packet.FiveTuple{Proto: packet.ProtoTCP, SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	miss := packet.FiveTuple{Proto: packet.ProtoTCP, SrcIP: 5, DstIP: 6, SrcPort: 7, DstPort: 8}
	sw.Install(hit, packet.MakeAddr(10, 0, 0, 9))

	const goroutines, iters = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, ok := sw.Lookup(hit, 0); !ok {
					t.Error("installed rule did not match")
					return
				}
				if _, ok := sw.Lookup(miss, 0); ok {
					t.Error("missing rule matched")
					return
				}
			}
		}()
	}
	wg.Wait()
	if h := sw.Hits.Load(); h != goroutines*iters {
		t.Errorf("hits = %d, want %d", h, goroutines*iters)
	}
	if m := sw.Misses.Load(); m != goroutines*iters {
		t.Errorf("misses = %d, want %d", m, goroutines*iters)
	}
}
