// Package app provides the traffic applications driving the experiments:
// bulk transfer sources/sinks (the iperf-like flows of Figures 9, 12, 14,
// 15) and a minimal HTTP-like request/response server with a wrk-like
// closed-loop load generator (Figure 10).
package app

import (
	"encoding/binary"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
)

// Sink counts application bytes received per interval — the goodput
// measurement of the paper's figures ("measured at the receivers").
type Sink struct {
	Eng    *sim.Engine
	Series *stats.TimeSeries
	Total  uint64
}

// NewSink attaches a goodput time series with the given bin width.
func NewSink(eng *sim.Engine, interval sim.Time) *Sink {
	return &Sink{Eng: eng, Series: stats.NewTimeSeries(interval)}
}

// Serve registers the sink on a listening stack port.
func (s *Sink) Serve(stack *tcp.Stack, port packet.Port) {
	stack.Listen(port, func(c *tcp.Conn) {
		c.OnData = func(b []byte) { s.consume(len(b)) }
		c.OnPeerFIN = func() { c.Close() }
	})
}

// Attach counts one connection's received bytes into the sink.
func (s *Sink) Attach(c *tcp.Conn) {
	c.OnData = func(b []byte) { s.consume(len(b)) }
}

func (s *Sink) consume(n int) {
	s.Total += uint64(n)
	if s.Series != nil {
		s.Series.Add(s.Eng.Now(), float64(n))
	}
}

// Source sends a continuous byte stream on a connection, keeping at most
// window bytes buffered in the stack (so memory stays bounded while the
// congestion window stays full).
type Source struct {
	Conn  *tcp.Conn
	Chunk int // bytes written per refill (default 64 KB)
	// HighWater bounds the stack send buffer (default 256 KB). Raise it
	// when the congestion window, not the application, should be the
	// binding constraint (the Figure 14 cwnd plots).
	HighWater int
	Limit     uint64
	Sent      uint64

	stopped bool
}

// NewSource starts a bulk sender on an (established or connecting)
// connection. limit of 0 streams forever.
func NewSource(c *tcp.Conn, limit uint64) *Source {
	s := &Source{Conn: c, Chunk: 64 << 10, HighWater: 256 << 10, Limit: limit}
	prev := c.OnEstablished
	c.OnEstablished = func() {
		if prev != nil {
			prev()
		}
		s.refill()
	}
	if c.State() == tcp.StateEstablished {
		s.refill()
	}
	// Refill as the stack drains: hook the data-path indirectly by
	// polling on acknowledgment progress via OnData of the reverse
	// direction is not possible, so Source refills on a timer-free
	// trigger: every refill writes a chunk and the stack invokes
	// OnSendBufferLow when the buffer drains.
	c.OnSendBufferLow = func() { s.refill() }
	return s
}

// Stop ceases refilling (the connection stays open).
func (s *Source) Stop() { s.stopped = true }

func (s *Source) refill() {
	if s.stopped {
		return
	}
	for s.Conn.BufferedOut() < s.HighWater {
		n := s.Chunk
		if s.Limit > 0 {
			remaining := s.Limit - s.Sent
			if remaining == 0 {
				s.Conn.Close()
				s.stopped = true
				return
			}
			if uint64(n) > remaining {
				n = int(remaining)
			}
		}
		if err := s.Conn.Send(make([]byte, n)); err != nil {
			s.stopped = true
			return
		}
		s.Sent += uint64(n)
	}
}

// ---------- HTTP-like request/response (Figure 10) ----------

// reqHeader is "R" + 4-byte response size; respHeader is 4-byte body size.
const reqSize = 5

// HTTPServer answers fixed-framing requests: each request is 5 bytes
// ('R' + uint32 response size), each response is a 4-byte length followed
// by that many bytes. It stands in for NGINX serving a static object.
type HTTPServer struct {
	Requests uint64
	// RequestCost is CPU charged per served request (parsing, file cache,
	// response construction — the work a real web server does). Zero
	// means free.
	RequestCost sim.Time
}

// Serve registers the server on a stack port.
func (h *HTTPServer) Serve(stack *tcp.Stack, port packet.Port) {
	host := stack.Host
	stack.Listen(port, func(c *tcp.Conn) {
		var buf []byte
		c.OnData = func(b []byte) {
			buf = append(buf, b...)
			for len(buf) >= reqSize {
				if buf[0] != 'R' {
					c.Abort()
					return
				}
				size := binary.BigEndian.Uint32(buf[1:5])
				buf = buf[reqSize:]
				h.Requests++
				if h.RequestCost > 0 {
					host.CPU.Acquire(h.RequestCost)
				}
				resp := make([]byte, 4+size)
				binary.BigEndian.PutUint32(resp, size)
				if err := c.Send(resp); err != nil {
					return // connection closing: remaining responses are moot
				}
			}
		}
		c.OnPeerFIN = func() { c.Close() }
	})
}

// LoadGen is a wrk-like closed-loop generator: n persistent connections,
// each sending the next request as soon as the previous response is fully
// received, counting completed requests.
type LoadGen struct {
	Completed uint64
	Errors    uint64
	RespSize  uint32

	conns []*tcp.Conn
}

// NewLoadGen opens n persistent connections from the stack to addr:port
// and starts the request loop on each.
func NewLoadGen(stack *tcp.Stack, addr packet.Addr, port packet.Port, n int, respSize uint32) *LoadGen {
	g := &LoadGen{RespSize: respSize}
	for i := 0; i < n; i++ {
		c := stack.Connect(addr, port, tcp.Config{})
		g.conns = append(g.conns, c)
		g.drive(c)
	}
	return g
}

func (g *LoadGen) drive(c *tcp.Conn) {
	var pending []byte
	need := -1 // response bytes still expected; -1 = waiting for header
	sendReq := func() {
		req := make([]byte, reqSize)
		req[0] = 'R'
		binary.BigEndian.PutUint32(req[1:], g.RespSize)
		if err := c.Send(req); err != nil {
			g.Errors++
		}
	}
	c.OnEstablished = sendReq
	c.OnReset = func() { g.Errors++ }
	c.OnData = func(b []byte) {
		pending = append(pending, b...)
		for {
			if need < 0 {
				if len(pending) < 4 {
					return
				}
				need = int(binary.BigEndian.Uint32(pending))
				pending = pending[4:]
			}
			if len(pending) < need {
				return
			}
			pending = pending[need:]
			need = -1
			g.Completed++
			sendReq()
		}
	}
}
