package app_test

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/lab"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

func fastLink() netsim.LinkConfig {
	return netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Gbps(10)}
}

func TestSourceSinkGoodput(t *testing.T) {
	env := lab.NewEnv(1)
	link := netsim.LinkConfig{Delay: 100 * time.Microsecond, Bandwidth: netsim.Mbps(200)}
	c := env.AddNode("c", lab.HostOptions{Link: link, Stack: true})
	s := env.AddNode("s", lab.HostOptions{Link: link, Stack: true})
	env.Net.ComputeRoutes()

	sink := app.NewSink(env.Eng, time.Second)
	sink.Serve(s.Stack, 5001)
	conn := c.Stack.Connect(s.Addr(), 5001, tcp.Config{})
	src := app.NewSource(conn, 0) // unlimited
	env.RunFor(5 * time.Second)
	src.Stop()

	if sink.Total == 0 {
		t.Fatal("no bytes delivered")
	}
	bins := sink.Series.Bins()
	if len(bins) < 4 {
		t.Fatalf("series has %d bins", len(bins))
	}
	// Steady-state bins should be nonzero and roughly stable.
	if bins[2] == 0 || bins[3] == 0 {
		t.Errorf("goodput bins empty: %v", bins)
	}
	if src.Sent < sink.Total {
		t.Errorf("sent %d < delivered %d", src.Sent, sink.Total)
	}
}

func TestSourceLimitClosesConnection(t *testing.T) {
	env := lab.NewEnv(2)
	c := env.AddNode("c", lab.HostOptions{Link: fastLink(), Stack: true})
	s := env.AddNode("s", lab.HostOptions{Link: fastLink(), Stack: true})
	env.Net.ComputeRoutes()
	sink := app.NewSink(env.Eng, time.Second)
	sink.Serve(s.Stack, 5001)
	conn := c.Stack.Connect(s.Addr(), 5001, tcp.Config{})
	app.NewSource(conn, 300<<10)
	env.RunFor(30 * time.Second)
	if sink.Total != 300<<10 {
		t.Fatalf("delivered %d, want %d", sink.Total, 300<<10)
	}
	if c.Stack.Conns() != 0 {
		t.Errorf("connection not closed after limit (%v)", conn.State())
	}
}

func TestHTTPServerAndLoadGen(t *testing.T) {
	env := lab.NewEnv(3)
	c := env.AddNode("c", lab.HostOptions{Link: fastLink(), Stack: true})
	s := env.AddNode("s", lab.HostOptions{Link: fastLink(), Stack: true})
	env.Net.ComputeRoutes()

	srv := &app.HTTPServer{}
	srv.Serve(s.Stack, 80)
	gen := app.NewLoadGen(c.Stack, s.Addr(), 80, 8, 1000)
	env.RunFor(2 * time.Second)

	if gen.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if gen.Errors != 0 {
		t.Errorf("%d request errors", gen.Errors)
	}
	if srv.Requests < gen.Completed {
		t.Errorf("server handled %d < client completed %d", srv.Requests, gen.Completed)
	}
	// Closed-loop: roughly RTT-bound; with ~0.5 ms RTT and 8 conns expect
	// thousands of requests in 2 s.
	if gen.Completed < 1000 {
		t.Errorf("only %d requests in 2s over 8 connections", gen.Completed)
	}
}

func TestHTTPServerRejectsGarbage(t *testing.T) {
	env := lab.NewEnv(4)
	c := env.AddNode("c", lab.HostOptions{Link: fastLink(), Stack: true})
	s := env.AddNode("s", lab.HostOptions{Link: fastLink(), Stack: true})
	env.Net.ComputeRoutes()
	srv := &app.HTTPServer{}
	srv.Serve(s.Stack, 80)
	conn := c.Stack.Connect(s.Addr(), 80, tcp.Config{})
	reset := false
	conn.OnReset = func() { reset = true }
	conn.OnEstablished = func() { conn.Send([]byte("BOGUS")) }
	env.RunFor(time.Second)
	if !reset {
		t.Error("server did not abort on malformed request")
	}
}
